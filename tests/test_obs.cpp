// Tests for the observability layer (src/obs/): counter/histogram stress
// with exact-sum and monotonicity asserts (run under TSan in CI), the
// histogram-quantile oracle against a sorted reference, trace-ring
// wrap-around, registry merge semantics, the expositions, and the
// kv_store::metrics() surface. The PAM_METRICS=0 compile-out checks live in
// test_obs_off.cpp, built into this binary with the switch off.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pam/pam.h"
#include "server/kv_store.h"
#include "util/random.h"

// Everything here asserts live recording, so the whole file is metrics-on
// only. Under a global -DPAM_METRICS=0 build the off-mode TU
// (test_obs_off.cpp) still runs; this one contributes nothing.
#if PAM_METRICS

namespace {

using namespace pam;

// Find one series in a scrape; nullptr when absent.
const obs::counter_value* find_counter(const obs::registry_snapshot& snap,
                                       const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const obs::histogram_value* find_histogram(const obs::registry_snapshot& snap,
                                           const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// ------------------------------------------------------------- counters --

TEST(ObsCounter, ExactSumAcrossThreads) {
  obs::counter c("pam_test_exact_total");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 200000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; i++) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  // Striped relaxed cells lose nothing: the sum is exact once quiescent.
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsCounter, MonotoneUnderConcurrentReads) {
  obs::counter c("pam_test_monotone_total");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) c.inc();
  });
  uint64_t prev = 0;
  for (int i = 0; i < 10000; i++) {
    uint64_t now = c.value();
    ASSERT_GE(now, prev);  // every stripe is monotone, so the sum is
    prev = now;
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(c.value(), c.value());
}

TEST(ObsCounter, WeightedIncrements) {
  obs::counter c("pam_test_weighted_total");
  c.inc(7);
  c.inc();
  c.inc(100);
  EXPECT_EQ(c.value(), 108u);
}

TEST(ObsGauge, SetAndAdd) {
  obs::gauge g("pam_test_depth");
  g.set(42);
  g.add(-40);
  EXPECT_EQ(g.value(), 2);
  g.add(-10);
  EXPECT_EQ(g.value(), -8);  // gauges may go negative mid-transition
}

// ------------------------------------------------------------ histogram --

TEST(ObsHistogram, BucketBoundsRoundTrip) {
  // Every value maps to a bucket whose [lo, hi) actually contains it.
  for (uint64_t v : {0ull, 1ull, 7ull, 8ull, 9ull, 100ull, 1023ull, 1024ull,
                     123456789ull, (1ull << 39), (1ull << 41)}) {
    size_t b = obs::histogram::bucket_of(v);
    auto [lo, hi] = obs::histogram::bucket_bounds(b);
    if (v < (1ull << obs::histogram::kMaxOctave)) {
      EXPECT_LE(lo, v) << "v=" << v;
      EXPECT_GT(hi, v) << "v=" << v;
    } else {
      EXPECT_EQ(b, obs::histogram::kBuckets - 1);  // overflow bucket
    }
  }
  // Bucket index is monotone in the value.
  size_t prev = 0;
  for (uint64_t v = 0; v < 100000; v += 13) {
    size_t b = obs::histogram::bucket_of(v);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(ObsHistogram, ExactSumAndCountAcrossThreads) {
  obs::histogram h("pam_test_sum_ns");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> ts;
  std::atomic<uint64_t> expect_sum{0};
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&, t] {
      random_gen g(static_cast<uint64_t>(t) + 1);
      uint64_t local = 0;
      for (int i = 0; i < kPerThread; i++) {
        uint64_t v = g.next() % 1000000;
        h.record(v);
        local += v;
      }
      expect_sum.fetch_add(local);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h.sum(), expect_sum.load());
}

TEST(ObsHistogram, QuantileOracle) {
  // Log-bucket quantiles vs the sorted reference: relative error is bounded
  // by the sub-bucket width (1/8 = 12.5%), tested across three shapes.
  auto check = [](std::vector<uint64_t> values) {
    obs::histogram h("pam_test_oracle_ns");
    for (uint64_t v : values) h.record(v);
    std::sort(values.begin(), values.end());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
      size_t rank = static_cast<size_t>(q * double(values.size() - 1));
      double exact = double(values[rank]);
      double est = h.quantile(q);
      if (exact < 8) {
        EXPECT_LE(std::abs(est - exact), 1.0) << "q=" << q;
      } else {
        EXPECT_LE(std::abs(est - exact) / exact, 0.13)
            << "q=" << q << " exact=" << exact << " est=" << est;
      }
    }
  };
  // Uniform.
  {
    random_gen g(7);
    std::vector<uint64_t> v(50000);
    for (auto& x : v) x = g.next() % 2000000;
    check(std::move(v));
  }
  // Heavy-tailed (squared uniform).
  {
    random_gen g(8);
    std::vector<uint64_t> v(50000);
    for (auto& x : v) {
      uint64_t u = g.next() % 65536;
      x = u * u;
    }
    check(std::move(v));
  }
  // Bimodal: fast path ~1us, slow path ~1ms.
  {
    random_gen g(9);
    std::vector<uint64_t> v(50000);
    for (auto& x : v) {
      x = (g.next() % 100 < 90) ? 1000 + g.next() % 100
                                : 1000000 + g.next() % 10000;
    }
    check(std::move(v));
  }
}

TEST(ObsHistogram, EmptyQuantileIsZero) {
  obs::histogram h("pam_test_empty_ns");
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

// ------------------------------------------------------------- registry --

TEST(ObsRegistry, MergesInstancesByNameAndLabel) {
  obs::counter a("pam_test_merge_total");
  obs::counter b("pam_test_merge_total");
  obs::counter other("pam_test_merge_total", "shard=\"1\"");
  a.inc(10);
  b.inc(5);
  other.inc(3);
  auto snap = obs::registry::get().scrape();
  uint64_t unlabeled = 0, labeled = 0;
  for (const auto& c : snap.counters) {
    if (c.name != "pam_test_merge_total") continue;
    if (c.label.empty()) unlabeled = c.value;
    else labeled = c.value;
  }
  EXPECT_EQ(unlabeled, 15u);  // two instances, one series
  EXPECT_EQ(labeled, 3u);     // the label splits the series
}

TEST(ObsRegistry, UnregistersOnDestruction) {
  {
    obs::counter c("pam_test_transient_total");
    c.inc();
    EXPECT_NE(find_counter(obs::registry::get().scrape(),
                           "pam_test_transient_total"),
              nullptr);
  }
  EXPECT_EQ(find_counter(obs::registry::get().scrape(),
                         "pam_test_transient_total"),
            nullptr);
}

TEST(ObsRegistry, ScrapeWhileRecording) {
  // Scrapes race recording threads freely; under TSan this is the
  // wait-free-hot-path claim in executable form.
  obs::counter c("pam_test_race_total");
  obs::histogram h("pam_test_race_ns");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; t++) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.inc();
        h.record(1234);
      }
    });
  }
  for (int i = 0; i < 200; i++) {
    auto snap = obs::registry::get().scrape();
    EXPECT_NE(find_counter(snap, "pam_test_race_total"), nullptr);
    EXPECT_NE(find_histogram(snap, "pam_test_race_ns"), nullptr);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

// ---------------------------------------------------------------- trace --

TEST(ObsTrace, SpanRoundTripAndWrapAround) {
  obs::set_trace_enabled(true);
  uint64_t before = obs::trace_span_count();
  // More spans than one ring holds: the ring must wrap, the monotone count
  // must see every one of them.
  const uint64_t n = 4096 * 2 + 100;
  for (uint64_t i = 0; i < n; i++) {
    obs::span s("test.span");
  }
  EXPECT_EQ(obs::trace_span_count() - before, n);
  std::ostringstream os;
  obs::dump_chrome_json(os);
  std::string out = os.str();
  obs::set_trace_enabled(false);
  // Valid Chrome-trace envelope with our span present.
  EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(out.find("\"name\":\"test.span\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  // Wrapped ring: at most ring-capacity events for this thread survive.
  size_t count = 0;
  for (size_t pos = 0; (pos = out.find("test.span", pos)) != std::string::npos;
       pos++) {
    count++;
  }
  EXPECT_LE(count, size_t{4096});
  EXPECT_GT(count, size_t{0});
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  obs::set_trace_enabled(false);
  uint64_t before = obs::trace_span_count();
  for (int i = 0; i < 100; i++) {
    obs::span s("test.disabled");
  }
  EXPECT_EQ(obs::trace_span_count(), before);
}

TEST(ObsTrace, RecordSpanFromManyThreads) {
  obs::set_trace_enabled(true);
  uint64_t before = obs::trace_span_count();
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; t++) {
    ts.emplace_back([] {
      for (int i = 0; i < 1000; i++) {
        obs::span s("test.mt");
      }
    });
  }
  for (auto& t : ts) t.join();
  obs::set_trace_enabled(false);
  EXPECT_EQ(obs::trace_span_count() - before, 4000u);
}

// ----------------------------------------------------------- exposition --

TEST(ObsExport, PrometheusTextShape) {
  obs::counter c("pam_test_prom_total");
  obs::gauge g("pam_test_prom_depth", "shard=\"2\"");
  obs::histogram h("pam_test_prom_ns");
  c.inc(9);
  g.set(-4);
  for (int i = 0; i < 100; i++) h.record(1000);
  std::ostringstream os;
  obs::prometheus_text(obs::registry::get().scrape(), os);
  std::string out = os.str();
  EXPECT_NE(out.find("# TYPE pam_test_prom_total counter"), std::string::npos);
  EXPECT_NE(out.find("pam_test_prom_total 9"), std::string::npos);
  EXPECT_NE(out.find("pam_test_prom_depth{shard=\"2\"} -4"),
            std::string::npos);
  EXPECT_NE(out.find("pam_test_prom_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(out.find("pam_test_prom_ns_count 100"), std::string::npos);
  EXPECT_NE(out.find("pam_test_prom_ns_sum 100000"), std::string::npos);
}

TEST(ObsExport, JsonShape) {
  obs::counter c("pam_test_json_total");
  c.inc(3);
  std::ostringstream os;
  obs::metrics_json(obs::registry::get().scrape(), os);
  std::string out = os.str();
  EXPECT_EQ(out.rfind("{\"counters\":{", 0), 0u);
  EXPECT_NE(out.find("\"pam_test_json_total\":3"), std::string::npos);
  EXPECT_NE(out.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(out.find("\"histograms\":{"), std::string::npos);
}

// ------------------------------------------------- kv_store::metrics() --

TEST(ObsKvStore, ExpositionCoversTheStack) {
  using map_t = pam_map<map_entry<uint64_t, uint64_t>>;
  using entry_t = map_t::entry_t;
  std::vector<entry_t> init;
  for (uint64_t i = 0; i < 1000; i++) init.push_back({i * 10, i});
  kv_store<map_t> store(map_t{std::move(init)}, {.num_shards = 4});
  for (uint64_t i = 0; i < 500; i++) store.put(i * 7, i);
  store.flush();
  for (uint64_t i = 0; i < 200; i++) (void)store.get(i * 10);
  (void)store.snapshot();

  auto snap = store.metrics();
  // Combiner series, fed by the puts above.
  const auto* enq = find_counter(snap, "pam_combiner_ops_enqueued_total");
  ASSERT_NE(enq, nullptr);
  EXPECT_GE(enq->value, 500u);
  EXPECT_NE(find_counter(snap, "pam_combiner_batches_flushed_total"), nullptr);
  EXPECT_NE(find_histogram(snap, "pam_combiner_batch_ops"), nullptr);
  // Read path and cut engine.
  const auto* finds = find_counter(snap, "pam_read_finds_total");
  ASSERT_NE(finds, nullptr);
  EXPECT_GE(finds->value, 200u);
  EXPECT_NE(find_counter(snap, "pam_cut_attempts_total"), nullptr);
  // Epoch/arena (the flushes above displaced roots through snapshot_box).
  EXPECT_NE(find_counter(snap, "pam_epoch_retired_total"), nullptr);
  bool have_reserved = false;
  for (const auto& g : snap.gauges) {
    if (g.name == "pam_arena_reserved_bytes") have_reserved = true;
  }
  EXPECT_TRUE(have_reserved);
  // Per-shard entry gauges, labeled per shard.
  size_t shard_gauges = 0;
  int64_t total_entries = 0;
  for (const auto& g : snap.gauges) {
    if (g.name == "pam_shard_entries") {
      shard_gauges++;
      total_entries += g.value;
    }
  }
  EXPECT_EQ(shard_gauges, store.shards().num_shards());
  EXPECT_EQ(static_cast<size_t>(total_entries), store.size());

  // Both expositions render without blowing up and carry a known series.
  EXPECT_NE(store.metrics_text().find("pam_combiner_ops_enqueued_total"),
            std::string::npos);
  EXPECT_NE(store.metrics_json().find("pam_read_finds_total"),
            std::string::npos);
}

TEST(ObsKvStore, IngestStatsIsAViewOverTheRegistry) {
  using map_t = pam_map<map_entry<uint64_t, uint64_t>>;
  kv_store<map_t> store(map_t{}, {});
  auto before = store.ingest_stats();
  for (uint64_t i = 0; i < 100; i++) store.put(i, i);
  store.flush();
  auto after = store.ingest_stats();
  EXPECT_EQ(after.ops_enqueued - before.ops_enqueued, 100u);
  EXPECT_EQ(after.ops_committed - before.ops_committed, 100u);
  EXPECT_GE(after.batches_flushed, before.batches_flushed + 1);
  EXPECT_EQ(after.sink_failures, before.sink_failures);
}

}  // namespace

#endif  // PAM_METRICS
