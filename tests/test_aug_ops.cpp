// Tests for the augmented-map-specific operations (paper Figure 1, below
// the dashed line): aug_val, aug_left, aug_range, aug_filter, aug_project.
// Each is differentially tested against a brute-force scan, across all
// four balancing schemes and both sum and max augmentations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "pam/pam.h"
#include "util/random.h"

namespace {

using K = uint64_t;
using V = uint64_t;

using BalanceTypes = ::testing::Types<pam::weight_balanced, pam::avl_tree,
                                      pam::red_black, pam::treap>;

template <typename Balance>
class AugOps : public ::testing::Test {
 public:
  using sum_map_type = pam::aug_map<pam::sum_entry<K, V>, Balance>;
  using max_map_type = pam::aug_map<pam::max_entry<K, int64_t>, Balance>;

  static std::vector<std::pair<K, V>> random_entries(size_t n, uint64_t seed,
                                                     uint64_t range) {
    std::vector<std::pair<K, V>> es(n);
    pam::random_gen g(seed);
    for (auto& e : es) e = {g.next() % range, g.next() % 1000};
    return es;
  }
};

TYPED_TEST_SUITE(AugOps, BalanceTypes);

TYPED_TEST(AugOps, AugValIsTotalSum) {
  using sum_map = typename TestFixture::sum_map_type;
  auto es = TestFixture::random_entries(30000, 1, 1u << 30);
  sum_map m(es);
  uint64_t expect = 0;
  std::map<K, V> dedup;
  for (auto& e : es) dedup[e.first] = e.second;
  for (auto& [k, v] : dedup) expect += v;
  EXPECT_EQ(m.aug_val(), expect);
  EXPECT_EQ(sum_map().aug_val(), 0u);  // identity on the empty map
}

TYPED_TEST(AugOps, AugValMaintainedThroughUpdates) {
  using sum_map = typename TestFixture::sum_map_type;
  sum_map m;
  uint64_t expect = 0;
  pam::random_gen g(2);
  std::map<K, V> oracle;
  for (int i = 0; i < 2000; i++) {
    K k = g.next() % 500;
    V v = g.next() % 100;
    if (g.next() % 3 == 0) {
      if (oracle.count(k)) expect -= oracle[k];
      oracle.erase(k);
      m = sum_map::remove(std::move(m), k);
    } else {
      if (oracle.count(k)) expect -= oracle[k];
      oracle[k] = v;
      expect += v;
      m = sum_map::insert(std::move(m), k, v);
    }
    ASSERT_EQ(m.aug_val(), expect) << "step " << i;
  }
}

TYPED_TEST(AugOps, AugLeftMatchesPrefixScan) {
  using sum_map = typename TestFixture::sum_map_type;
  auto es = TestFixture::random_entries(20000, 3, 1u << 16);
  sum_map m(es);
  std::map<K, V> oracle;
  for (auto& e : es) oracle[e.first] = e.second;
  pam::random_gen g(4);
  for (int q = 0; q < 500; q++) {
    K k = g.next() % (1u << 16);
    uint64_t expect = 0;
    for (auto& [key, v] : oracle) {
      if (key > k) break;
      expect += v;  // aug_left is inclusive: keys <= k
    }
    ASSERT_EQ(m.aug_left(k), expect) << "k=" << k;
  }
  EXPECT_EQ(m.aug_left(~0ull), m.aug_val());
}

TYPED_TEST(AugOps, AugRangeMatchesBruteForce) {
  using sum_map = typename TestFixture::sum_map_type;
  auto es = TestFixture::random_entries(20000, 5, 1u << 16);
  sum_map m(es);
  std::map<K, V> oracle;
  for (auto& e : es) oracle[e.first] = e.second;
  pam::random_gen g(6);
  for (int q = 0; q < 500; q++) {
    K a = g.next() % (1u << 16), b = g.next() % (1u << 16);
    K lo = std::min(a, b), hi = std::max(a, b);
    uint64_t expect = 0;
    for (auto it = oracle.lower_bound(lo); it != oracle.end() && it->first <= hi; ++it)
      expect += it->second;
    ASSERT_EQ(m.aug_range(lo, hi), expect) << lo << ".." << hi;
  }
  // inverted and empty ranges return the identity
  EXPECT_EQ(m.aug_range(100, 50), 0u);
}

TYPED_TEST(AugOps, AugRangeEqualsAugValOfRange) {
  // The defining equivalence: aug_range(m, lo, hi) == aug_val(range(m, lo, hi)).
  using sum_map = typename TestFixture::sum_map_type;
  auto es = TestFixture::random_entries(5000, 7, 1u << 14);
  sum_map m(es);
  pam::random_gen g(8);
  for (int q = 0; q < 100; q++) {
    K a = g.next() % (1u << 14), b = g.next() % (1u << 14);
    K lo = std::min(a, b), hi = std::max(a, b);
    ASSERT_EQ(m.aug_range(lo, hi), sum_map::range(m, lo, hi).aug_val());
  }
}

TYPED_TEST(AugOps, MaxAugmentation) {
  using max_map = typename TestFixture::max_map_type;
  std::vector<std::pair<K, int64_t>> es;
  pam::random_gen g(9);
  for (int i = 0; i < 10000; i++)
    es.push_back({g.next() % 5000, static_cast<int64_t>(g.next() % 100000) - 50000});
  max_map m(es);
  std::map<K, int64_t> oracle;
  for (auto& e : es) oracle[e.first] = e.second;
  int64_t expect = std::numeric_limits<int64_t>::lowest();
  for (auto& [k, v] : oracle) expect = std::max(expect, v);
  EXPECT_EQ(m.aug_val(), expect);
  // range max queries
  for (int q = 0; q < 200; q++) {
    K a = g.next() % 5000, b = g.next() % 5000;
    K lo = std::min(a, b), hi = std::max(a, b);
    int64_t want = std::numeric_limits<int64_t>::lowest();
    for (auto it = oracle.lower_bound(lo); it != oracle.end() && it->first <= hi; ++it)
      want = std::max(want, it->second);
    ASSERT_EQ(m.aug_range(lo, hi), want);
  }
}

TYPED_TEST(AugOps, AugFilterEquivalentToPlainFilter) {
  // With max augmentation and h(a) = (a > theta), h(a)||h(b) == h(max(a,b)),
  // so aug_filter must select exactly the entries with value > theta.
  using max_map = typename TestFixture::max_map_type;
  std::vector<std::pair<K, int64_t>> es;
  pam::random_gen g(10);
  for (int i = 0; i < 30000; i++)
    es.push_back({g.next(), static_cast<int64_t>(g.next() % 100000)});
  max_map m(es);
  for (int64_t theta : {-1, 50000, 99000, 200000}) {
    auto pruned = max_map::aug_filter(m, [=](int64_t a) { return a > theta; });
    auto plain = max_map::filter(m, [=](K, int64_t v) { return v > theta; });
    ASSERT_TRUE(pruned.check_valid());
    ASSERT_EQ(pruned.entries(), plain.entries()) << "theta=" << theta;
  }
}

TYPED_TEST(AugOps, AugFilterOnEmptyAndAllPruned) {
  using max_map = typename TestFixture::max_map_type;
  max_map empty;
  auto r = max_map::aug_filter(empty, [](int64_t a) { return a > 0; });
  EXPECT_TRUE(r.empty());
  max_map m = {{1, 10}, {2, 20}};
  auto none = max_map::aug_filter(m, [](int64_t a) { return a > 100; });
  EXPECT_TRUE(none.empty());
  auto all = max_map::aug_filter(m, [](int64_t a) { return a > -100; });
  EXPECT_EQ(all.size(), 2u);
}

TYPED_TEST(AugOps, AugProjectEqualsProjectedAugRange) {
  // g2 = "is the range-sum odd", f2 = xor; f2(g2(a),g2(b)) == g2(a+b) holds
  // for parity, so aug_project must equal g2(aug_range).
  using sum_map = typename TestFixture::sum_map_type;
  auto es = TestFixture::random_entries(10000, 11, 1u << 14);
  sum_map m(es);
  pam::random_gen g(12);
  auto g2 = [](uint64_t a) { return static_cast<int>(a & 1); };
  auto f2 = [](int a, int b) { return a ^ b; };
  for (int q = 0; q < 300; q++) {
    K a = g.next() % (1u << 14), b = g.next() % (1u << 14);
    K lo = std::min(a, b), hi = std::max(a, b);
    int got = m.template aug_project<int>(g2, f2, 0, lo, hi);
    int want = g2(m.aug_range(lo, hi));
    ASSERT_EQ(got, want);
  }
}

TYPED_TEST(AugOps, AugProjectIdentityProjection) {
  // g2 = identity, f2 = + : aug_project degenerates to aug_range.
  using sum_map = typename TestFixture::sum_map_type;
  auto es = TestFixture::random_entries(8000, 13, 1u << 13);
  sum_map m(es);
  pam::random_gen g(14);
  for (int q = 0; q < 200; q++) {
    K a = g.next() % (1u << 13), b = g.next() % (1u << 13);
    K lo = std::min(a, b), hi = std::max(a, b);
    uint64_t got = m.template aug_project<uint64_t>(
        [](uint64_t x) { return x; },
        [](uint64_t x, uint64_t y) { return x + y; }, 0, lo, hi);
    ASSERT_EQ(got, m.aug_range(lo, hi));
  }
}

// Augmentation must survive every bulk operation (union/filter/...): the
// validator recomputes cached sums bottom-up and compares.
TYPED_TEST(AugOps, BulkOpsPreserveAugmentation) {
  using sum_map = typename TestFixture::sum_map_type;
  auto ea = TestFixture::random_entries(10000, 15, 1u << 14);
  auto eb = TestFixture::random_entries(10000, 16, 1u << 14);
  sum_map a(ea), b(eb);
  auto u = sum_map::map_union(a, b, [](V x, V y) { return x + y; });
  ASSERT_TRUE(u.check_valid());
  auto i = sum_map::map_intersect(a, b, [](V x, V y) { return x * y % 997; });
  ASSERT_TRUE(i.check_valid());
  auto d = sum_map::map_difference(a, b);
  ASSERT_TRUE(d.check_valid());
  auto f = sum_map::filter(a, [](K k, V) { return k % 2 == 0; });
  ASSERT_TRUE(f.check_valid());
  auto mi = sum_map::multi_insert(a, eb, [](V x, V y) { return x + y; });
  ASSERT_TRUE(mi.check_valid());
}

// Non-augmented maps must compile and work with the same machinery
// ("algorithms oblivious of augmentation", paper §4).
TYPED_TEST(AugOps, PlainMapWorksWithoutAugmentation) {
  using plain = pam::pam_map<pam::map_entry<K, V>, TypeParam>;
  auto es = TestFixture::random_entries(10000, 17, 1u << 14);
  plain m(es);
  ASSERT_TRUE(m.check_valid());
  auto u = plain::map_union(m, plain(TestFixture::random_entries(100, 18, 1u << 14)));
  ASSERT_TRUE(u.check_valid());
  EXPECT_FALSE(plain::has_aug);
}

// Sets share the same core.
TYPED_TEST(AugOps, SetBasics) {
  pam::pam_set<uint64_t, std::less<uint64_t>, TypeParam> s(
      std::vector<uint64_t>{5, 3, 9, 3, 1});
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s.contains(9));
  EXPECT_FALSE(s.contains(4));
  s.insert_inplace(4);
  EXPECT_TRUE(s.contains(4));
  auto keys = s.keys();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), 5u);
}

}  // namespace

// --- additions: key/value extraction and range counting -------------------
namespace {

TEST(MapConvenience, KeysValuesAndCountRange) {
  using map_t = pam::aug_map<pam::sum_entry<uint64_t, uint64_t>>;
  map_t m = {{5, 50}, {1, 10}, {9, 90}, {3, 30}};
  EXPECT_EQ(m.keys(), (std::vector<uint64_t>{1, 3, 5, 9}));
  EXPECT_EQ(m.values(), (std::vector<uint64_t>{10, 30, 50, 90}));
  EXPECT_EQ(m.count_range(1, 9), 4u);
  EXPECT_EQ(m.count_range(2, 5), 2u);
  EXPECT_EQ(m.count_range(4, 4), 0u);
  EXPECT_EQ(m.count_range(5, 5), 1u);
  EXPECT_EQ(m.count_range(9, 1), 0u);  // inverted
  EXPECT_EQ(m.count_range(10, 20), 0u);
}

TEST(MapConvenience, CountRangeMatchesRangeSizeRandomized) {
  using map_t = pam::aug_map<pam::sum_entry<uint64_t, uint64_t>>;
  std::vector<map_t::entry_t> es;
  pam::random_gen g(31);
  for (int i = 0; i < 20000; i++) es.push_back({g.next() % 100000, 1});
  map_t m(es);
  for (int q = 0; q < 300; q++) {
    uint64_t a = g.next() % 100000, b = g.next() % 100000;
    uint64_t lo = std::min(a, b), hi = std::max(a, b);
    ASSERT_EQ(m.count_range(lo, hi), map_t::range(m, lo, hi).size());
  }
}

TEST(MapConvenience, MinEntryAugmentation) {
  using min_map = pam::aug_map<pam::min_entry<uint64_t, int64_t>>;
  min_map m = {{1, 5}, {2, -3}, {3, 7}};
  EXPECT_EQ(m.aug_val(), -3);
  EXPECT_EQ(m.aug_range(3, 3), 7);
  EXPECT_EQ(min_map().aug_val(), std::numeric_limits<int64_t>::max());
}

TEST(MapConvenience, MaxEntryOverStringValues) {
  // max_entry with a non-numeric value type: std::numeric_limits<V> is not
  // specialized, so the identity dispatches through extreme_values<V> to
  // V{} — which for max over std::string ("" sorts below everything) is the
  // true identity. This must compile and fold correctly.
  using smax_map = pam::aug_map<pam::max_entry<uint64_t, std::string>>;
  smax_map m = {{1, "ant"}, {2, "zebra"}, {3, "mole"}};
  EXPECT_EQ(m.aug_val(), "zebra");
  EXPECT_EQ(m.aug_range(1, 1), "ant");
  EXPECT_EQ(m.aug_range(2, 3), "zebra");
  EXPECT_EQ(m.aug_left(1), "ant");
  EXPECT_EQ(smax_map().aug_val(), "");  // identity = V{}
  m = smax_map::insert(std::move(m), 4, "aardvark");
  EXPECT_EQ(m.aug_range(3, 4), "mole");
  EXPECT_TRUE(m.check_valid());
}

TEST(MapConvenience, StringKeyedMaxAugmentation) {
  // Both ends string: front-coded keys with a string-valued max fold.
  using str_max_map = pam::aug_map<pam::str_max_entry<uint64_t>>;
  str_max_map m = {{"a/1", 3}, {"a/2", 9}, {"b/1", 5}};
  EXPECT_EQ(m.aug_val(), 9u);
  EXPECT_EQ(m.aug_range(std::string("a/"), std::string("a/z")), 9u);
  EXPECT_EQ(m.aug_range(std::string("b/"), std::string("b/z")), 5u);
  EXPECT_TRUE(m.check_valid());
}

}  // namespace
