// Tests for the epoch-based deferred-reclamation layer (alloc/arena.h) and
// the lock-free snapshot publication protocol built on it (pam/snapshot.h):
// guard/retire/advance mechanics, snapshot acquisition under continuous
// writer churn (progress + no torn or lost versions), validated consistent
// cuts across shards, and pool accounting returning to baseline once limbo
// drains. The concurrency cases here run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "pam/pam.h"
#include "server/kv_store.h"
#include "server/sharded_map.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace {

using K = uint64_t;
using V = uint64_t;
using map_t = pam::aug_map<pam::sum_entry<K, V>>;
using entry_t = map_t::entry_t;

// Flush anything this test binary retired; no guards are active between
// tests, so three turns clear every limbo bucket.
void drain_all() { ASSERT_EQ(pam::epoch::drain(), 0u) << "limbo did not drain"; }

// --------------------------------------------------------- epoch basics --

struct tracked {
  static inline std::atomic<int> deleted{0};
  int payload = 0;
};

TEST(Epoch, RetiredObjectsAreFreedByDrain) {
  int before = tracked::deleted.load();
  size_t pending_before = pam::epoch::pending();
  for (int i = 0; i < 10; i++) {
    pam::epoch::retire(new tracked{i}, [](void* p) {
      tracked::deleted.fetch_add(1);
      delete static_cast<tracked*>(p);
    });
  }
  EXPECT_EQ(pam::epoch::pending(), pending_before + 10);
  drain_all();
  EXPECT_EQ(tracked::deleted.load(), before + 10);
  EXPECT_EQ(pam::epoch::pending(), 0u);
}

TEST(Epoch, GuardPinsReclamation) {
  // An object retired while a guard is active on another thread must not be
  // freed until that guard exits, no matter how hard we drive the epoch.
  int before = tracked::deleted.load();
  std::atomic<bool> enter_guard{false}, release_guard{false}, in_guard{false};
  std::thread reader([&] {
    while (!enter_guard.load()) std::this_thread::yield();
    pam::epoch::guard g;
    in_guard.store(true);
    while (!release_guard.load()) std::this_thread::yield();
  });

  enter_guard.store(true);
  while (!in_guard.load()) std::this_thread::yield();
  pam::epoch::retire(new tracked{}, [](void* p) {
    tracked::deleted.fetch_add(1);
    delete static_cast<tracked*>(p);
  });
  for (int i = 0; i < 10; i++) pam::epoch::try_advance();
  EXPECT_EQ(tracked::deleted.load(), before) << "freed under an active guard";

  release_guard.store(true);
  reader.join();
  drain_all();
  EXPECT_EQ(tracked::deleted.load(), before + 1);
}

TEST(Epoch, GuardsNest) {
  pam::epoch::guard outer;
  // Nest across a function boundary: guards are re-entrant at runtime, but
  // to the thread-safety analysis (which is intra-procedural) a *lexically*
  // nested guard would read as a double acquire of epoch_domain. Real
  // nesting happens exactly like this — a guarded caller invoking a
  // function that takes its own guard.
  [] {
    pam::epoch::guard inner;
    EXPECT_GE(pam::epoch::active_readers(), 1u);
  }();
  // Still protected by the outer guard.
  EXPECT_GE(pam::epoch::active_readers(), 1u);
}

// ------------------------------------------- snapshot publication basics --

TEST(SnapshotBoxLockFree, VersionAndSizeAreCommitAtomic) {
  pam::snapshot_box<map_t> box(map_t{{{1, 10}, {2, 20}}});
  EXPECT_EQ(box.version(), 0u);
  EXPECT_EQ(box.size(), 2u);
  box.store(map_t{{{1, 10}}});
  EXPECT_EQ(box.version(), 1u);
  EXPECT_EQ(box.size(), 1u);
  box.update([](map_t m) { return map_t::insert(std::move(m), 7, 70); });
  auto [ver, sz] = box.version_size();
  EXPECT_EQ(ver, 2u);
  EXPECT_EQ(sz, 2u);
  auto [snap, sver] = box.snapshot_versioned();
  EXPECT_EQ(sver, 2u);
  EXPECT_EQ(snap.size(), 2u);
}

TEST(SnapshotBoxLockFree, WithCurrentReadsInPlace) {
  pam::snapshot_box<map_t> box(map_t{{{5, 50}, {6, 60}}});
  auto v = box.with_current([](const map_t& m) { return m.find(6); });
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 60u);
  EXPECT_EQ(box.with_current([](const map_t& m) { return m.aug_val(); }), 110u);
}

// The analysis cannot follow the writer lock through the std::unique_lock
// handle writer_lock() returns (the dynamic form the multi-box fallback
// needs), so this helper opts out — the lock genuinely is held across the
// peeks, which is exactly the contract the annotations enforce elsewhere.
void peek_under_writer_lock(pam::snapshot_box<map_t>& box)
    PAM_NO_THREAD_SAFETY_ANALYSIS {
  auto lock = box.writer_lock();
  EXPECT_EQ(box.peek().size(), 1u);
  EXPECT_EQ(box.peek_version(), 0u);
  EXPECT_EQ(box.peek_size(), 1u);
}

TEST(SnapshotBoxLockFree, WriterLockPinsPayloadForPeek) {
  pam::snapshot_box<map_t> box(map_t{{{1, 1}}});
  peek_under_writer_lock(box);
}

// -------------------------------------------------- churn stress (TSan) --

// One writer commits continuously; readers acquire snapshots the whole
// time. Asserts the heart of the lock-free protocol:
//   * progress: every reader completes its full quota of acquisitions while
//     the writer never stops committing (readers cannot be blocked out);
//   * no torn versions: every snapshot satisfies the commit invariant
//     (batches of kBatch entries, value 1 each => aug_val == size, size ==
//     version * kBatch) and versions observed by one reader never go back;
//   * no lost snapshots: the final version equals the number of commits.
TEST(SnapshotChurn, ReadersProgressUnderContinuousWriter) {
  constexpr K kRounds = 200;
  constexpr K kBatch = 100;
  constexpr int kReaders = 4;
  constexpr int kAcquisitionsPerReader = 400;

  pam::snapshot_box<map_t> box(map_t{});
  std::atomic<bool> writer_done{false};
  std::atomic<int> violations{0};

  std::thread writer([&] {
    for (K round = 0; round < kRounds; round++) {
      box.update([&](map_t m) {
        std::vector<entry_t> batch;
        batch.reserve(kBatch);
        for (K i = 0; i < kBatch; i++) batch.push_back({round * kBatch + i, 1});
        return map_t::multi_insert(std::move(m), std::move(batch));
      });
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&] {
      uint64_t last_version = 0;
      for (int i = 0; i < kAcquisitionsPerReader; i++) {
        auto [snap, version] = box.snapshot_versioned();
        if (version < last_version) violations.fetch_add(1);
        last_version = version;
        if (snap.size() != version * kBatch) violations.fetch_add(1);
        if (snap.aug_val() != snap.size()) violations.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();
  // Progress both ways: the readers finished their quota above regardless of
  // writer state; now let the writer finish and check nothing was lost.
  writer.join();
  EXPECT_TRUE(writer_done.load());
  EXPECT_EQ(violations.load(), 0);
  auto [final_snap, final_version] = box.snapshot_versioned();
  EXPECT_EQ(final_version, kRounds);
  EXPECT_EQ(final_snap.size(), kRounds * kBatch);
}

// Validated consistent cuts under churn: a single writer commits to shards
// in strict round-robin order, so at every instant the per-shard commit
// counters form a non-increasing chain v0 >= v1 >= ... >= v_{S-1} >= v0 - 1.
// A cut that was not instantaneous (torn between the passes) would show a
// vector violating the chain.
TEST(SnapshotChurn, ValidatedCutsAreInstantaneous) {
  const std::vector<K> splitters = {1000, 2000, 3000};
  pam::sharded_map<map_t> store(splitters);  // 4 shards
  const size_t S = store.num_shards();
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::thread writer([&] {
    K tick = 0;
    while (!stop.load()) {
      size_t s = tick % S;
      store.update_shard(s, [&](map_t m) {
        return map_t::insert(std::move(m), s * 1000 + (tick / S) % 900,
                             tick);
      });
      tick++;
    }
  });

  std::vector<std::thread> cutters;
  for (int c = 0; c < 3; c++) {
    cutters.emplace_back([&] {
      std::vector<uint64_t> last(S, 0);
      for (int i = 0; i < 300; i++) {
        auto cut = store.snapshot_all_versioned();
        for (size_t s = 0; s + 1 < S; s++) {
          if (cut.versions[s] < cut.versions[s + 1]) violations.fetch_add(1);
        }
        if (cut.versions[0] > cut.versions[S - 1] + 1) violations.fetch_add(1);
        for (size_t s = 0; s < S; s++) {
          if (cut.versions[s] < last[s]) violations.fetch_add(1);
          last[s] = cut.versions[s];
          // The cut's maps must match the versions it claims: shard sizes
          // are bounded by the number of commits to that shard.
          if (cut.snapshot.shard(s).size() > cut.versions[s])
            violations.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : cutters) t.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(violations.load(), 0);
}

// ------------------------------------------- reclamation accounting -----

TEST(Reclamation, PoolUsageReturnsToBaselineAfterLimboDrain) {
  drain_all();  // clear other tests' limbo before taking the baseline
  int64_t node_base = map_t::used_nodes();
  int64_t block_base = map_t::used_leaf_blocks();
  {
    pam::snapshot_box<map_t> box(map_t{});
    for (K round = 0; round < 40; round++) {
      box.update([&](map_t m) {
        std::vector<entry_t> batch;
        for (K i = 0; i < 500; i++) batch.push_back({round * 500 + i, i});
        return map_t::multi_insert(std::move(m), std::move(batch));
      });
    }
    // Displaced versions are deferred, not freed inline: with the epoch
    // machinery quiescent they sit in limbo and pin their trees.
    EXPECT_GT(pam::epoch::pending(), 0u);
  }
  // Box destroyed; drain the limbo lists (parallel teardown inside) and the
  // exact live accounting must return to its baseline.
  drain_all();
  EXPECT_EQ(map_t::used_nodes(), node_base);
  EXPECT_EQ(map_t::used_leaf_blocks(), block_base);
}

TEST(Reclamation, TrimReturnsChunksAfterDrain) {
  drain_all();
  // A dedicated entry type gives this test private node/leaf pools no other
  // suite touches, and keeping every allocation and free on this thread
  // (sequential inserts, no forked teardown) means every chunk those pools
  // ever carve is fully handed back below — so trim() must release them.
  // Slots freed into *other* threads' caches would conservatively pin their
  // chunks; that is the documented behavior, not what this test checks.
  using trim_map_t = pam::aug_map<pam::sum_entry<uint64_t, uint32_t>>;
  size_t old_cutoff = pam::gc_par_cutoff();
  pam::set_gc_par_cutoff(std::numeric_limits<size_t>::max());
  {
    pam::snapshot_box<trim_map_t> box(trim_map_t{});
    for (K round = 0; round < 20; round++) {
      box.update([&](trim_map_t m) {
        for (K i = 0; i < 1000; i++)
          m = trim_map_t::insert(std::move(m), round * 1000 + i,
                                 static_cast<uint32_t>(i));
        return m;
      });
    }
  }
  size_t still_pending = pam::epoch::drain();
  EXPECT_EQ(still_pending, 0u);
  // kv_store's maintenance hook: drains then trims every pool. All maps in
  // this test are dead, so the chunks grown for them are fully free; other
  // suites' live maps (if any) simply pin their own chunks.
  EXPECT_EQ(trim_map_t::used_nodes(), 0);
  size_t released = pam::kv_store<map_t>::trim_memory();
  EXPECT_GT(released, 0u);
  pam::set_gc_par_cutoff(old_cutoff);
  // The pools keep working after a trim: fresh allocations re-carve.
  trim_map_t m;
  for (K i = 0; i < 100; i++)
    m = trim_map_t::insert(std::move(m), i, static_cast<uint32_t>(i));
  EXPECT_EQ(m.size(), 100u);
}

// Readers racing a writer on the kv_store serving stack end to end: the
// YCSB-B shape (get + occasional put through the combiner) with history
// captures mixed in, all on the lock-free path.
TEST(SnapshotChurn, ServingStackEndToEnd) {
  std::vector<entry_t> initial;
  for (K i = 0; i < 4000; i++) initial.push_back({i * 7, i});
  pam::kv_store<map_t> store(map_t{std::move(initial)},
                             {.num_shards = 8, .retain_versions = 8});
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::thread writer([&] {
    pam::random_gen g(1);
    while (!stop.load()) {
      store.put(g.next() % 30000, g.next());
      if (g.next() % 64 == 0) store.flush();
    }
  });
  std::thread checkpointer([&] {
    while (!stop.load()) {
      store.checkpoint();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; r++) {
    readers.emplace_back([&, r] {
      pam::random_gen g(100 + r);
      for (int i = 0; i < 2000; i++) {
        if (i % 20 == 0) {
          auto snap = store.snapshot();
          size_t n = snap.size();
          size_t counted = 0;
          snap.for_each([&](const K&, const V&) { counted++; });
          if (counted != n) violations.fetch_add(1);
        } else {
          store.get(g.next() % 30000);
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();
  checkpointer.join();
  EXPECT_EQ(violations.load(), 0);
  store.flush();
}

}  // namespace
