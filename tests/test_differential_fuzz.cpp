// Differential fuzzing: long randomized mixed-operation runs (point ops,
// bulk ops, aug queries, range extraction) against a std::map oracle, with
// full structural validation and leak accounting at every phase boundary.
// Parameterized over seeds; run for both the default weight-balanced scheme
// and red-black (the scheme with the most intricate join).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "pam/pam.h"
#include "util/random.h"

namespace {

using K = uint64_t;
using V = uint64_t;

// The integer-key harness, parameterized over the entry policy (flat
// sum_entry or the delta-coded mirror) and a strictly-monotone rank-to-key
// mapping, so the delta sweep can shape the gap distribution the encoder
// sees without touching the op mix or the oracle lockstep.
template <typename Balance, typename Entry, typename KeyFn>
void fuzz_run_impl(uint64_t seed, int phases, int ops_per_phase,
                   const KeyFn& key_of) {
  using map_t = pam::aug_map<Entry, Balance>;
  using entry_t = typename map_t::entry_t;
  constexpr uint64_t kKeyRange = 1 << 14;

  int64_t node_base = map_t::used_nodes();
  int64_t leaf_base = map_t::used_leaf_blocks();
  {
    pam::random_gen g(seed);
    map_t m;
    std::map<K, V> oracle;
    std::vector<map_t> retained;  // old versions that must never change
    std::vector<std::map<K, V>> retained_oracle;

    for (int phase = 0; phase < phases; phase++) {
      for (int op = 0; op < ops_per_phase; op++) {
        switch (g.next() % 10) {
          case 0:
          case 1: {  // point insert
            K k = key_of(g.next() % kKeyRange);
            V v = g.next() % 1000;
            m = map_t::insert(std::move(m), k, v);
            oracle[k] = v;
            break;
          }
          case 2: {  // point remove
            K k = key_of(g.next() % kKeyRange);
            m = map_t::remove(std::move(m), k);
            oracle.erase(k);
            break;
          }
          case 3: {  // multi-insert a batch
            size_t bn = g.next() % 200;
            std::vector<entry_t> batch(bn);
            for (auto& e : batch)
              e = {key_of(g.next() % kKeyRange), g.next() % 1000};
            for (auto& e : batch) oracle[e.first] = e.second;
            m = map_t::multi_insert(std::move(m), std::move(batch));
            break;
          }
          case 4: {  // multi-delete a batch
            size_t bn = g.next() % 100;
            std::vector<K> batch(bn);
            for (auto& k : batch) k = key_of(g.next() % kKeyRange);
            for (auto& k : batch) oracle.erase(k);
            m = map_t::multi_delete(std::move(m), std::move(batch));
            break;
          }
          case 5: {  // union with a random small map
            size_t bn = g.next() % 150;
            std::vector<entry_t> other(bn);
            for (auto& e : other)
              e = {key_of(g.next() % kKeyRange), g.next() % 1000};
            map_t om(other);
            for (auto& [k, v] : om.entries()) oracle[k] = v;
            m = map_t::map_union(std::move(m), std::move(om));
            break;
          }
          case 6: {  // difference with a random small map
            size_t bn = g.next() % 100;
            std::vector<entry_t> other(bn);
            for (auto& e : other) e = {key_of(g.next() % kKeyRange), 0};
            map_t om(other);
            for (auto& [k, v] : om.entries()) oracle.erase(k);
            m = map_t::map_difference(std::move(m), std::move(om));
            break;
          }
          case 7: {  // aug_range spot check
            K a = key_of(g.next() % kKeyRange), b = key_of(g.next() % kKeyRange);
            K lo = std::min(a, b), hi = std::max(a, b);
            uint64_t expect = 0;
            for (auto it = oracle.lower_bound(lo);
                 it != oracle.end() && it->first <= hi; ++it)
              expect += it->second;
            ASSERT_EQ(m.aug_range(lo, hi), expect);
            break;
          }
          case 8: {  // find spot check
            K k = key_of(g.next() % kKeyRange);
            auto it = oracle.find(k);
            auto got = m.find(k);
            ASSERT_EQ(got.has_value(), it != oracle.end());
            if (got.has_value()) {
              ASSERT_EQ(*got, it->second);
            }
            break;
          }
          case 9: {  // retain a version (tests persistence under churn)
            if (retained.size() < 8) {
              retained.push_back(m);
              retained_oracle.push_back(oracle);
            }
            break;
          }
        }
      }
      // Phase boundary: full validation of the live map and all retained
      // versions against their oracles.
      ASSERT_TRUE(m.check_valid()) << "seed " << seed << " phase " << phase;
      ASSERT_EQ(m.size(), oracle.size());
      {
        auto es = m.entries();
        size_t i = 0;
        for (auto& [k, v] : oracle) {
          ASSERT_EQ(es[i].first, k);
          ASSERT_EQ(es[i].second, v);
          i++;
        }
      }
      {
        // Lockstep lazy iteration against the oracle: the iterator walk
        // must visit exactly the oracle's entries, in order.
        auto it = m.begin();
        for (auto& [k, v] : oracle) {
          ASSERT_TRUE(it != m.end());
          ASSERT_EQ(it->key, k);
          ASSERT_EQ(it->value, v);
          ++it;
        }
        ASSERT_TRUE(it == m.end());
      }
      {
        // Serialization round-trip of the live map: the wire stream must
        // rebuild an equal, valid map — with its augmentation recomputed,
        // never trusted from the stream — at whatever balance scheme and
        // leaf block size this harness is sweeping.
        std::vector<char> wire;
        m.serialize(wire);
        map_t rt = map_t::deserialize(wire.data(), wire.size());
        ASSERT_TRUE(rt.check_valid()) << "seed " << seed << " phase " << phase;
        ASSERT_EQ(rt.size(), oracle.size());
        ASSERT_EQ(rt.aug_val(), m.aug_val());
        auto it = rt.begin();
        for (auto& [k, v] : oracle) {
          ASSERT_TRUE(it != rt.end());
          ASSERT_EQ(it->key, k);
          ASSERT_EQ(it->value, v);
          ++it;
        }
        ASSERT_TRUE(it == rt.end());
      }
      {
        // A random bounded view walked in lockstep with the oracle's
        // equivalent range, plus its O(log n) size/aug_val summaries.
        K a = key_of(g.next() % kKeyRange), b = key_of(g.next() % kKeyRange);
        K lo = std::min(a, b), hi = std::max(a, b);
        auto view = m.view(lo, hi);
        auto oit = oracle.lower_bound(lo);
        size_t count = 0;
        uint64_t sum = 0;
        for (auto [k, v] : view) {
          ASSERT_TRUE(oit != oracle.end() && oit->first <= hi);
          ASSERT_EQ(k, oit->first);
          ASSERT_EQ(v, oit->second);
          ++oit;
          count++;
          sum += v;
        }
        ASSERT_TRUE(oit == oracle.end() || oit->first > hi);
        ASSERT_EQ(view.size(), count);
        ASSERT_EQ(view.aug_val(), sum);
      }
      for (size_t r = 0; r < retained.size(); r++) {
        ASSERT_EQ(retained[r].size(), retained_oracle[r].size()) << "version " << r;
        uint64_t expect = 0;
        for (auto& [k, v] : retained_oracle[r]) expect += v;
        ASSERT_EQ(retained[r].aug_val(), expect) << "version " << r;
      }
      if (!retained.empty()) {
        // Structural diff of the live map against a random retained version
        // vs the brute-force symmetric difference of their oracles: exact
        // key/kind/value agreement, plus diff_fold consistency. Shared
        // subtrees between the versions exercise the pruning paths at every
        // balance scheme and leaf block size this harness sweeps.
        size_t r = g.next() % retained.size();
        auto d = map_t::diff(retained[r], m);
        ASSERT_TRUE(d.before.check_valid());
        ASSERT_TRUE(d.after.check_valid());
        auto changes = d.changes();
        size_t ci = 0;
        uint64_t before_sum = 0, after_sum = 0;
        auto oit = retained_oracle[r].begin();
        auto nit = oracle.begin();
        auto expect_change = [&](K key, const V* oldv, const V* newv) {
          ASSERT_LT(ci, changes.size()) << "missing change for key " << key;
          const auto& c = changes[ci++];
          ASSERT_EQ(c.key, key);
          ASSERT_EQ(c.before.has_value(), oldv != nullptr);
          ASSERT_EQ(c.after.has_value(), newv != nullptr);
          if (oldv != nullptr) {
            ASSERT_EQ(*c.before, *oldv);
            before_sum += *oldv;
          }
          if (newv != nullptr) {
            ASSERT_EQ(*c.after, *newv);
            after_sum += *newv;
          }
          ASSERT_EQ(c.kind, oldv == nullptr   ? pam::change_kind::added
                            : newv == nullptr ? pam::change_kind::removed
                                              : pam::change_kind::updated);
        };
        while (oit != retained_oracle[r].end() || nit != oracle.end()) {
          if (nit == oracle.end() ||
              (oit != retained_oracle[r].end() && oit->first < nit->first)) {
            expect_change(oit->first, &oit->second, nullptr);
            ++oit;
          } else if (oit == retained_oracle[r].end() || nit->first < oit->first) {
            expect_change(nit->first, nullptr, &nit->second);
            ++nit;
          } else {
            if (oit->second != nit->second)
              expect_change(oit->first, &oit->second, &nit->second);
            ++oit;
            ++nit;
          }
        }
        ASSERT_EQ(ci, changes.size()) << "spurious changes emitted";
        auto [bf, af] = map_t::diff_fold(
            retained[r], m, [](K, V v) { return v; },
            [](uint64_t a, uint64_t b) { return a + b; }, uint64_t{0});
        ASSERT_EQ(bf, before_sum);
        ASSERT_EQ(af, after_sum);
      }
    }
  }
  // Everything destroyed: both allocators must be back to baseline.
  ASSERT_EQ(map_t::used_nodes(), node_base) << "leak with seed " << seed;
  ASSERT_EQ(map_t::used_leaf_blocks(), leaf_base)
      << "leaf-block leak with seed " << seed;
}

// The flat-layout run the scheme/seed matrix drives: identity key mapping.
template <typename Balance>
void fuzz_run(uint64_t seed, int phases, int ops_per_phase) {
  fuzz_run_impl<Balance, pam::sum_entry<K, V>>(seed, phases, ops_per_phase,
                                               [](K k) { return k; });
}

// ------------------------------------------------------------ string keys --

// Adversarial shared-prefix key set: four prefix families, one of them 48
// chars long, so front-coded blocks build long in-block prefix chains and
// block boundaries land inside runs of near-identical keys.
std::string str_key(uint64_t x) {
  static const std::string kPrefixes[] = {
      std::string(), std::string("k/"),
      std::string("user/profile/settings/"), std::string(48, 'z') + "/"};
  std::string s = kPrefixes[x % 4];
  s += std::to_string(x);
  return s;
}

// The string-keyed mirror of fuzz_run: the same mixed-operation churn and
// phase-boundary lockstep validation, over front-coded leaf blocks. Lookups
// go through the heterogeneous std::string_view path.
template <typename Balance>
void fuzz_run_str(uint64_t seed, int phases, int ops_per_phase) {
  using map_t = pam::aug_map<pam::str_sum_entry<V>, Balance>;
  using entry_t = typename map_t::entry_t;
  constexpr uint64_t kKeyRange = 1 << 12;

  int64_t node_base = map_t::used_nodes();
  int64_t leaf_base = map_t::used_leaf_blocks();
  {
    pam::random_gen g(seed);
    map_t m;
    std::map<std::string, V> oracle;
    std::vector<map_t> retained;
    std::vector<std::map<std::string, V>> retained_oracle;

    for (int phase = 0; phase < phases; phase++) {
      for (int op = 0; op < ops_per_phase; op++) {
        switch (g.next() % 8) {
          case 0:
          case 1: {  // point insert
            std::string k = str_key(g.next() % kKeyRange);
            V v = g.next() % 1000;
            m = map_t::insert(std::move(m), k, v);
            oracle[k] = v;
            break;
          }
          case 2: {  // point remove
            std::string k = str_key(g.next() % kKeyRange);
            m = map_t::remove(std::move(m), k);
            oracle.erase(k);
            break;
          }
          case 3: {  // multi-insert a batch
            size_t bn = g.next() % 120;
            std::vector<entry_t> batch(bn);
            for (auto& e : batch)
              e = {str_key(g.next() % kKeyRange), g.next() % 1000};
            for (auto& e : batch) oracle[e.first] = e.second;
            m = map_t::multi_insert(std::move(m), std::move(batch));
            break;
          }
          case 4: {  // multi-delete a batch
            size_t bn = g.next() % 80;
            std::vector<std::string> batch(bn);
            for (auto& k : batch) k = str_key(g.next() % kKeyRange);
            for (auto& k : batch) oracle.erase(k);
            m = map_t::multi_delete(std::move(m), std::move(batch));
            break;
          }
          case 5: {  // union with a random small map
            size_t bn = g.next() % 100;
            std::vector<entry_t> other(bn);
            for (auto& e : other)
              e = {str_key(g.next() % kKeyRange), g.next() % 1000};
            map_t om(other);
            for (auto [k, v] : om.entries()) oracle[k] = v;
            m = map_t::map_union(std::move(m), std::move(om));
            break;
          }
          case 6: {  // aug_range spot check
            std::string a = str_key(g.next() % kKeyRange);
            std::string b = str_key(g.next() % kKeyRange);
            std::string lo = std::min(a, b), hi = std::max(a, b);
            uint64_t expect = 0;
            for (auto it = oracle.lower_bound(lo);
                 it != oracle.end() && it->first <= hi; ++it)
              expect += it->second;
            ASSERT_EQ(m.aug_range(lo, hi), expect);
            break;
          }
          case 7: {  // find spot check, via the string_view path
            std::string k = str_key(g.next() % kKeyRange);
            auto it = oracle.find(k);
            auto got = m.find(std::string_view(k));
            ASSERT_EQ(got.has_value(), it != oracle.end());
            if (got.has_value()) {
              ASSERT_EQ(*got, it->second);
            }
            ASSERT_EQ(m.contains(std::string_view(k)), it != oracle.end());
            if (retained.size() < 6 && (g.next() % 16) == 0) {
              retained.push_back(m);
              retained_oracle.push_back(oracle);
            }
            break;
          }
        }
      }
      ASSERT_TRUE(m.check_valid()) << "seed " << seed << " phase " << phase;
      ASSERT_EQ(m.size(), oracle.size());
      {
        // Lockstep lazy iteration against the oracle.
        auto it = m.begin();
        for (auto& [k, v] : oracle) {
          ASSERT_TRUE(it != m.end());
          ASSERT_EQ(it->key, k);
          ASSERT_EQ(it->value, v);
          ++it;
        }
        ASSERT_TRUE(it == m.end());
      }
      {
        // Serialization round-trip: front-coded blocks travel as raw
        // prefix-compressed regions and must decode back to the same keys.
        std::vector<char> wire;
        m.serialize(wire);
        map_t rt = map_t::deserialize(wire.data(), wire.size());
        ASSERT_TRUE(rt.check_valid()) << "seed " << seed << " phase " << phase;
        ASSERT_EQ(rt.size(), oracle.size());
        ASSERT_EQ(rt.aug_val(), m.aug_val());
        auto it = rt.begin();
        for (auto& [k, v] : oracle) {
          ASSERT_TRUE(it != rt.end());
          ASSERT_EQ(it->key, k);
          ASSERT_EQ(it->value, v);
          ++it;
        }
        ASSERT_TRUE(it == rt.end());
      }
      {
        // A random bounded view in lockstep with the oracle's range.
        std::string a = str_key(g.next() % kKeyRange);
        std::string b = str_key(g.next() % kKeyRange);
        std::string lo = std::min(a, b), hi = std::max(a, b);
        auto view = m.view(lo, hi);
        auto oit = oracle.lower_bound(lo);
        size_t count = 0;
        uint64_t sum = 0;
        for (auto [k, v] : view) {
          ASSERT_TRUE(oit != oracle.end() && oit->first <= hi);
          ASSERT_EQ(k, oit->first);
          ASSERT_EQ(v, oit->second);
          ++oit;
          count++;
          sum += v;
        }
        ASSERT_TRUE(oit == oracle.end() || oit->first > hi);
        ASSERT_EQ(view.size(), count);
        ASSERT_EQ(view.aug_val(), sum);
        auto lst = view.last();
        ASSERT_EQ(lst.has_value(), count > 0);
      }
      for (size_t r = 0; r < retained.size(); r++) {
        ASSERT_EQ(retained[r].size(), retained_oracle[r].size()) << "version " << r;
        uint64_t expect = 0;
        for (auto& [k, v] : retained_oracle[r]) expect += v;
        ASSERT_EQ(retained[r].aug_val(), expect) << "version " << r;
      }
      if (!retained.empty()) {
        // Structural diff vs a retained version: encoded blocks shared
        // across versions must prune, and the change stream must match the
        // brute-force oracle diff exactly.
        size_t r = g.next() % retained.size();
        auto d = map_t::diff(retained[r], m);
        ASSERT_TRUE(d.before.check_valid());
        ASSERT_TRUE(d.after.check_valid());
        auto changes = d.changes();
        size_t ci = 0;
        auto oit = retained_oracle[r].begin();
        auto nit = oracle.begin();
        auto expect_change = [&](const std::string& key, const V* oldv,
                                 const V* newv) {
          ASSERT_LT(ci, changes.size()) << "missing change for key " << key;
          const auto& c = changes[ci++];
          ASSERT_EQ(c.key, key);
          ASSERT_EQ(c.before.has_value(), oldv != nullptr);
          ASSERT_EQ(c.after.has_value(), newv != nullptr);
          if (oldv != nullptr) {
            ASSERT_EQ(*c.before, *oldv);
          }
          if (newv != nullptr) {
            ASSERT_EQ(*c.after, *newv);
          }
        };
        while (oit != retained_oracle[r].end() || nit != oracle.end()) {
          if (nit == oracle.end() ||
              (oit != retained_oracle[r].end() && oit->first < nit->first)) {
            expect_change(oit->first, &oit->second, nullptr);
            ++oit;
          } else if (oit == retained_oracle[r].end() || nit->first < oit->first) {
            expect_change(nit->first, nullptr, &nit->second);
            ++nit;
          } else {
            if (oit->second != nit->second)
              expect_change(oit->first, &oit->second, &nit->second);
            ++oit;
            ++nit;
          }
        }
        ASSERT_EQ(ci, changes.size()) << "spurious changes emitted";
      }
    }
  }
  ASSERT_EQ(map_t::used_nodes(), node_base) << "leak with seed " << seed;
  ASSERT_EQ(map_t::used_leaf_blocks(), leaf_base)
      << "coded-block leak with seed " << seed;
}

class FuzzSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeeds, WeightBalanced) {
  fuzz_run<pam::weight_balanced>(GetParam(), 5, 400);
}

TEST_P(FuzzSeeds, RedBlack) { fuzz_run<pam::red_black>(GetParam(), 5, 400); }

TEST_P(FuzzSeeds, Avl) { fuzz_run<pam::avl_tree>(GetParam(), 3, 300); }

TEST_P(FuzzSeeds, Treap) { fuzz_run<pam::treap>(GetParam(), 3, 300); }

// The blocked-leaf sweep: the same randomized mixed-operation run against
// the oracle at every leaf block size (0 disables blocks entirely — classic
// one-entry-per-node trees — 1 and 2 exercise the block-edge cases, 32 the
// default, 256 multi-class pooling), across all four balance schemes. check_valid() at every phase boundary covers block integrity
// (sorted entries, counts, cached block augs) and the leak accounting
// covers the leaf pools.
TEST_P(FuzzSeeds, BlockSizeSweepAllSchemes) {
  size_t saved_b = pam::leaf_block_size();
  for (size_t b : {size_t{0}, size_t{1}, size_t{2}, size_t{32}, size_t{256}}) {
    pam::set_leaf_block_size(b);
    fuzz_run<pam::weight_balanced>(GetParam() * 31 + b, 2, 150);
    fuzz_run<pam::avl_tree>(GetParam() * 37 + b, 2, 150);
    fuzz_run<pam::red_black>(GetParam() * 41 + b, 2, 150);
    fuzz_run<pam::treap>(GetParam() * 43 + b, 2, 150);
  }
  pam::set_leaf_block_size(saved_b);
}

// The delta-layout sweep (ISSUE 10): the same randomized lockstep run over
// delta-coded integer leaf blocks (zigzag-varint successor gaps), across
// all four balance schemes, the block sizes that stress block-edge cases
// (1, 2), the default (32), and large blocks (256) — B=0 is covered by the
// flat sweep since both layouts fall back to classic nodes — under three
// gap shapes: dense ranks (single-byte deltas), a large prime stride
// (multi-byte varints), and alternating 1 / >2^33 gaps (varint length
// boundaries on both sides of every pair). Phase boundaries run the full
// battery: check_valid (which re-derives every block's decoded keys and
// cached aug), serialize round-trips, diffs, and leak accounting.
TEST_P(FuzzSeeds, DeltaKeysBlockSweepAllSchemes) {
  using delta_entry = pam::delta_sum_entry<K, V>;
  auto dense = [](K k) { return k; };
  auto sparse = [](K k) { return k * 1000003; };
  auto adversarial = [](K k) {
    return (k / 2) * ((uint64_t{1} << 33) + 3) + (k % 2);
  };
  size_t saved_b = pam::leaf_block_size();
  for (size_t b : {size_t{1}, size_t{2}, size_t{32}, size_t{256}}) {
    pam::set_leaf_block_size(b);
    fuzz_run_impl<pam::weight_balanced, delta_entry>(GetParam() * 73 + b, 2,
                                                     120, dense);
    fuzz_run_impl<pam::avl_tree, delta_entry>(GetParam() * 79 + b, 2, 120,
                                              sparse);
    fuzz_run_impl<pam::red_black, delta_entry>(GetParam() * 83 + b, 2, 120,
                                               adversarial);
    fuzz_run_impl<pam::treap, delta_entry>(GetParam() * 89 + b, 2, 120,
                                           sparse);
    fuzz_run_impl<pam::weight_balanced, delta_entry>(GetParam() * 97 + b, 2,
                                                     120, adversarial);
  }
  pam::set_leaf_block_size(saved_b);
}

// The string-key sweep: the same mixed-operation lockstep run over
// front-coded leaf blocks, across all four balance schemes and the block
// sizes that disable blocks entirely (0), stress block-edge cases (1, 2),
// the default (32), and multi-byte-class encoding (256).
TEST_P(FuzzSeeds, StringKeysBlockSweepAllSchemes) {
  size_t saved_b = pam::leaf_block_size();
  for (size_t b : {size_t{0}, size_t{1}, size_t{2}, size_t{32}, size_t{256}}) {
    pam::set_leaf_block_size(b);
    fuzz_run_str<pam::weight_balanced>(GetParam() * 51 + b, 2, 120);
    fuzz_run_str<pam::avl_tree>(GetParam() * 53 + b, 2, 120);
    fuzz_run_str<pam::red_black>(GetParam() * 59 + b, 2, 120);
    fuzz_run_str<pam::treap>(GetParam() * 61 + b, 2, 120);
  }
  pam::set_leaf_block_size(saved_b);
}

// B=0 is valid for every layout (satellite of the leaf-encoding contract):
// string-keyed maps fall back to classic one-entry-per-node trees with
// inline std::string keys and allocate no coded blocks at all.
TEST_P(FuzzSeeds, StringKeysClassicNodesAtBZero) {
  size_t saved_b = pam::leaf_block_size();
  pam::set_leaf_block_size(0);
  using map_t = pam::aug_map<pam::str_sum_entry<uint64_t>>;
  int64_t leaf_base = map_t::used_leaf_blocks();
  fuzz_run_str<pam::weight_balanced>(GetParam() * 67, 2, 120);
  fuzz_run_str<pam::red_black>(GetParam() * 71, 2, 120);
  EXPECT_EQ(map_t::used_leaf_blocks(), leaf_base);
  EXPECT_EQ(leaf_base, 0);
  pam::set_leaf_block_size(saved_b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(1, 7, 13, 99, 123456, 0xdeadbeef));

}  // namespace
