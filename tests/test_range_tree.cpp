// Tests for the 2D range-tree application (paper Section 5.2) against
// brute-force rectangle scans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "apps/range_tree.h"
#include "util/random.h"

namespace {

using rtree = pam::range_tree<double, int64_t>;
using point = rtree::point;

std::vector<point> random_points(size_t n, uint64_t seed, double span) {
  // Distinct (x, y) with high probability thanks to random doubles.
  std::vector<point> ps(n);
  pam::random_gen g(seed);
  for (auto& p : ps) {
    p.x = g.next_double() * span;
    p.y = g.next_double() * span;
    p.w = static_cast<int64_t>(g.next() % 100);
  }
  return ps;
}

int64_t brute_sum(const std::vector<point>& ps, double xlo, double xhi,
                  double ylo, double yhi) {
  int64_t s = 0;
  for (auto& p : ps)
    if (p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi) s += p.w;
  return s;
}

size_t brute_count(const std::vector<point>& ps, double xlo, double xhi,
                   double ylo, double yhi) {
  size_t c = 0;
  for (auto& p : ps)
    if (p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi) c++;
  return c;
}

std::vector<std::pair<double, double>> brute_points(const std::vector<point>& ps,
                                                    double xlo, double xhi,
                                                    double ylo, double yhi) {
  std::vector<std::pair<double, double>> out;
  for (auto& p : ps)
    if (p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi)
      out.push_back({p.x, p.y});
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RangeTree, EmptyTree) {
  rtree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.query_sum(0, 100, 0, 100), 0);
  EXPECT_EQ(t.query_count(0, 100, 0, 100), 0u);
  EXPECT_TRUE(t.query_points(0, 100, 0, 100).empty());
}

TEST(RangeTree, SinglePoint) {
  rtree t(std::vector<point>{{5.0, 7.0, 42}});
  EXPECT_EQ(t.query_sum(0, 10, 0, 10), 42);
  EXPECT_EQ(t.query_sum(5, 5, 7, 7), 42);  // boundaries inclusive
  EXPECT_EQ(t.query_sum(0, 4.9, 0, 10), 0);
  EXPECT_EQ(t.query_sum(0, 10, 7.1, 10), 0);
}

TEST(RangeTree, InnerMapsMirrorSubtrees) {
  auto ps = random_points(2000, 1, 100.0);
  rtree t(ps);
  ASSERT_TRUE(t.check_valid());  // every outer subtree's inner map size match
  // The root's augmented inner map holds all points; its aug is the total.
  int64_t total = 0;
  for (auto& p : ps) total += p.w;
  EXPECT_EQ(t.query_sum(-1, 101, -1, 101), total);
}

TEST(RangeTree, QuerySumMatchesBruteForce) {
  for (uint64_t seed : {2ull, 3ull}) {
    auto ps = random_points(3000, seed, 1000.0);
    rtree t(ps);
    pam::random_gen g(seed * 10);
    for (int q = 0; q < 300; q++) {
      double x1 = g.next_double() * 1000, x2 = g.next_double() * 1000;
      double y1 = g.next_double() * 1000, y2 = g.next_double() * 1000;
      double xlo = std::min(x1, x2), xhi = std::max(x1, x2);
      double ylo = std::min(y1, y2), yhi = std::max(y1, y2);
      ASSERT_EQ(t.query_sum(xlo, xhi, ylo, yhi),
                brute_sum(ps, xlo, xhi, ylo, yhi))
          << "rect " << xlo << "," << xhi << " x " << ylo << "," << yhi;
    }
  }
}

TEST(RangeTree, QueryCountMatchesBruteForce) {
  auto ps = random_points(2500, 4, 500.0);
  rtree t(ps);
  pam::random_gen g(40);
  for (int q = 0; q < 200; q++) {
    double x1 = g.next_double() * 500, x2 = g.next_double() * 500;
    double y1 = g.next_double() * 500, y2 = g.next_double() * 500;
    double xlo = std::min(x1, x2), xhi = std::max(x1, x2);
    double ylo = std::min(y1, y2), yhi = std::max(y1, y2);
    ASSERT_EQ(t.query_count(xlo, xhi, ylo, yhi),
              brute_count(ps, xlo, xhi, ylo, yhi));
  }
}

TEST(RangeTree, QueryPointsMatchesBruteForce) {
  auto ps = random_points(2000, 5, 300.0);
  rtree t(ps);
  pam::random_gen g(50);
  for (int q = 0; q < 100; q++) {
    double x1 = g.next_double() * 300, x2 = g.next_double() * 300;
    double y1 = g.next_double() * 300, y2 = g.next_double() * 300;
    double xlo = std::min(x1, x2), xhi = std::max(x1, x2);
    double ylo = std::min(y1, y2), yhi = std::max(y1, y2);
    auto got_pts = t.query_points(xlo, xhi, ylo, yhi);
    std::vector<std::pair<double, double>> got;
    int64_t got_w = 0;
    for (auto& p : got_pts) {
      got.push_back({p.x, p.y});
      got_w += p.w;
    }
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, brute_points(ps, xlo, xhi, ylo, yhi));
    ASSERT_EQ(got_w, brute_sum(ps, xlo, xhi, ylo, yhi));
  }
}

TEST(RangeTree, DegenerateRectangles) {
  auto ps = random_points(500, 6, 100.0);
  rtree t(ps);
  // a rectangle that is a single point
  auto& p0 = ps[123];
  EXPECT_EQ(t.query_sum(p0.x, p0.x, p0.y, p0.y), p0.w);
  EXPECT_EQ(t.query_count(p0.x, p0.x, p0.y, p0.y), 1u);
  // empty (inverted) ranges
  EXPECT_EQ(t.query_sum(50, 40, 0, 100), 0);
  EXPECT_EQ(t.query_sum(0, 100, 50, 40), 0);
  // slabs: full x range, thin y range and vice versa
  EXPECT_EQ(t.query_sum(-1, 101, 20, 30), brute_sum(ps, -1, 101, 20, 30));
  EXPECT_EQ(t.query_sum(20, 30, -1, 101), brute_sum(ps, 20, 30, -1, 101));
}

TEST(RangeTree, NodeSharingAcrossInnerTrees) {
  // Paper Table 4: path copying lets inner trees share nodes with their
  // children's inner trees, saving ~13.8% over the no-sharing theoretical
  // count of n*log2(n) (one copy of every point per outer level). The
  // percentages are a property of the one-entry-per-node layout, so the
  // check pins the unblocked layout for its duration (the blocked layout's
  // far smaller absolute footprint is asserted by the space benchmarks).
  size_t saved_b = pam::leaf_block_size();
  pam::set_leaf_block_size(0);
  int64_t inner_before = rtree::inner_nodes_used();
  auto ps = random_points(4096, 7, 1000.0);
  {
    rtree t(ps);
    int64_t inner_used = rtree::inner_nodes_used() - inner_before;
    int64_t n = 4096;
    int64_t theory = n * 12;  // n * log2(n), no sharing
    EXPECT_LT(inner_used, theory);              // some sharing happened
    EXPECT_GT(inner_used, theory / 2);          // but only ~10-20%, as in paper
    double saving = 1.0 - static_cast<double>(inner_used) / static_cast<double>(theory);
    EXPECT_GT(saving, 0.05);
    EXPECT_LT(saving, 0.5);
  }
  EXPECT_EQ(rtree::inner_nodes_used(), inner_before);  // no leaks
  pam::set_leaf_block_size(saved_b);
}

TEST(RangeTree, IntegerCoordinates) {
  pam::range_tree<int64_t, int64_t> t(
      std::vector<pam::range_tree<int64_t, int64_t>::point>{
          {1, 1, 5}, {2, 2, 7}, {3, 3, 11}, {2, 5, 13}});
  EXPECT_EQ(t.query_sum(1, 3, 1, 3), 23);
  EXPECT_EQ(t.query_sum(2, 2, 2, 2), 7);
  EXPECT_EQ(t.query_sum(2, 2, 0, 10), 20);
}

}  // namespace
