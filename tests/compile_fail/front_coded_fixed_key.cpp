// Leaf-encoding contract compile-fail fixture: key_layout::front_coded is
// defined only for std::string keys — prefix compression of a fixed-width
// integer makes no sense, and the block encoder stores keys as byte
// suffixes. An entry policy that declares the coded layout over a
// fixed-width key must be rejected by the node_manager static_assert with
// the contracted diagnostic, on every toolchain (this is front-end
// enforcement, not clang thread-safety analysis).
//
// compile-fail: any-compiler
// expect-error: front_coded requires key_t = std::string
#include "pam/pam.h"

struct bad_entry {
  using key_t = unsigned long long;
  using val_t = unsigned long long;
  static constexpr pam::key_layout layout = pam::key_layout::front_coded;
  static bool comp(key_t a, key_t b) { return a < b; }
};

int main() {
  pam::aug_map<bad_entry> m;
  m = pam::aug_map<bad_entry>::insert(std::move(m), 1, 2);
  return static_cast<int>(m.size());
}
