// Concurrency-contract compile-fail fixture: retirement must happen OUTSIDE
// the critical section that displaced the object. Two layers of the same
// rule:
//
//  * epoch::retire is PAM_EXCLUDES(epoch_domain) — retiring while pinned by
//    an epoch::guard can deadlock the reclamation heuristic against the
//    caller's own pin (an amortized drain can never advance past it);
//  * the snapshot_box writer protocol retires a displaced payload only
//    after the writer lock drops (its retire is PAM_EXCLUDES(writer_mu_));
//    mini_box replicates that shape, since the real method is private.
//
// clang -Werror=thread-safety must reject both calls below.
//
// expect-error: epoch_domain
// expect-error: 'mu'
#include "alloc/arena.h"
#include "util/thread_annotations.h"

namespace {

void noop_deleter(void*) {}

struct mini_box {
  pam::mutex mu;

  // The displaced-version hand-off: must run after mu drops.
  void retire_displaced() PAM_EXCLUDES(mu) {}

  void commit_wrong() {
    pam::mutex_guard lock(mu);
    retire_displaced();  // BAD: still inside the writer critical section
  }
};

}  // namespace

int main() {
  static int dummy = 0;
  {
    pam::epoch::guard g;
    pam::epoch::retire(&dummy, &noop_deleter);  // BAD: retiring while pinned
  }
  mini_box b;
  b.commit_wrong();
  return 0;
}
