// Concurrency-contract compile-fail fixture: current_map() hands back a
// reference into the published payload with zero refcount traffic, valid
// only while an epoch::guard pins reclamation. Calling it unpinned is a
// use-after-free window. current_map() declares
// PAM_REQUIRES_SHARED(epoch_domain); clang -Werror=thread-safety must
// reject this translation unit.
//
// expect-error: epoch_domain
// pam-lint: allow(include-discipline) — the fixture targets the box directly.
#include "pam/snapshot.h"

#include <cstddef>

struct toy_map {
  std::size_t size() const { return 0; }
};

int main() {
  pam::snapshot_box<toy_map> box{toy_map{}};
  const toy_map& m = box.current_map();  // BAD: no epoch::guard in scope
  (void)m;
  return 0;
}
