// Concurrency-contract CONTROL fixture: the same protocols the fail
// fixtures break, used correctly. This file must COMPILE under
// clang -Werror=thread-safety (and under GCC, where the annotations
// compile away) — proving the fail fixtures are rejected because of the
// contract, not because of a broken include or a bad toy type.
//
// pam-lint: allow(include-discipline) — exercises the box directly, like
// the fail fixtures it controls for.
#include "pam/snapshot.h"

#include <cstddef>

#include "alloc/arena.h"
#include "util/thread_annotations.h"

struct toy_map {
  std::size_t size() const { return 0; }
};

namespace {

void noop_deleter(void*) {}

struct mini_box {
  pam::mutex mu;

  void retire_displaced() PAM_EXCLUDES(mu) {}

  void commit_right() {
    {
      pam::mutex_guard lock(mu);
      // ... displace under the lock ...
    }
    retire_displaced();  // lock dropped: retirement is legal here
  }
};

}  // namespace

int main() {
  pam::snapshot_box<toy_map> box{toy_map{}};

  // Reader path: pin reclamation, then dereference the published payload.
  {
    pam::epoch::guard g;
    const toy_map& m = box.current_map();
    (void)m;
  }

  // Retirement outside any pin.
  static int dummy = 0;
  pam::epoch::retire(&dummy, &noop_deleter);

  // Writer path: store() is self-locking (and retires after unlock).
  box.store(toy_map{});

  mini_box b;
  b.commit_right();
  return 0;
}
