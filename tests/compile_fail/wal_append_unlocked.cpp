// Concurrency-contract compile-fail fixture: wal_writer::append_locked
// writes through the segment handle seg_, which rotation closes and
// replaces — so the handle is only valid under mu_. An unlocked append
// could write a record into a closed (already-renamed-past) segment file,
// silently splitting the log. append_locked declares PAM_REQUIRES(mu_);
// clang -Werror=thread-safety must reject this translation unit.
//
// expect-error: mu_
// pam-lint: allow(include-discipline) — the fixture targets the WAL directly.
#include "store/wal.h"

int main() {
  auto fs = pam::store::posix_fs();
  pam::store::wal_writer w(fs, "/tmp/pam_compile_fail_wal",
                           pam::store::wal_config{}, 1);
  const char payload[] = "rec";
  w.append_locked(payload, sizeof payload);  // BAD: mu_ not held
  return 0;
}
