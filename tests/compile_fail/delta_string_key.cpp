// Leaf-encoding contract compile-fail fixture: key_layout::delta is defined
// only for integral keys — the encoding stores zigzag-varint successor
// differences, which is meaningless for std::string (and front coding
// already owns that shape). An entry policy that declares the delta layout
// over a string key must be rejected by the delta_block static_assert with
// the contracted diagnostic, on every toolchain (this is front-end
// enforcement, not clang thread-safety analysis).
//
// compile-fail: any-compiler
// expect-error: delta requires an integral key_t
#include <string>

#include "pam/pam.h"

struct bad_entry {
  using key_t = std::string;
  using val_t = unsigned long long;
  static constexpr pam::key_layout layout = pam::key_layout::delta;
  static bool comp(const key_t& a, const key_t& b) { return a < b; }
};

int main() {
  pam::aug_map<bad_entry> m;
  m = pam::aug_map<bad_entry>::insert(std::move(m), "k", 2);
  return static_cast<int>(m.size());
}
