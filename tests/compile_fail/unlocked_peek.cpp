// Concurrency-contract compile-fail fixture: peek() reads the published
// payload under the assumption that writers are excluded, so calling it
// without holding the lock returned by writer_lock() on the same box is a
// protocol violation — the payload could be displaced and retired mid-read.
// peek() declares PAM_REQUIRES(writer_mu_); clang -Werror=thread-safety
// must reject this translation unit.
//
// expect-error: writer_mu_
// pam-lint: allow(include-discipline) — the fixture targets the box directly.
#include "pam/snapshot.h"

#include <cstddef>

struct toy_map {
  std::size_t size() const { return 0; }
};

int main() {
  pam::snapshot_box<toy_map> box{toy_map{}};
  const toy_map& m = box.peek();  // BAD: no writer_lock() held
  (void)m;
  return 0;
}
