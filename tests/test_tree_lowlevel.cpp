// Low-level tests at the tree_ops/node_manager layer: split/join/join2
// semantics, refcount behavior of the ownership protocol, height/weight
// bounds of each balancing scheme, and augmented-value maintenance through
// raw joins. These pin down the internal contracts the higher-level API is
// built on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "pam/pam.h"
#include "util/random.h"

namespace {

using entry = pam::sum_entry<uint64_t, uint64_t>;

using BalanceTypes = ::testing::Types<pam::weight_balanced, pam::avl_tree,
                                      pam::red_black, pam::treap>;

template <typename Balance>
class TreeLowLevel : public ::testing::Test {
 public:
  using ops_type = pam::aug_ops<entry, Balance>;
  using node_type = typename ops_type::node;

  static node_type* build_n(size_t n, uint64_t seed) {
    std::vector<std::pair<uint64_t, uint64_t>> es(n);
    pam::random_gen g(seed);
    for (size_t i = 0; i < n; i++) es[i] = {g.next(), g.next() % 100};
    return ops_type::build(std::move(es), [](uint64_t, uint64_t b) { return b; });
  }

  static size_t height(const node_type* t) {
    if (t == nullptr) return 0;
    return 1 + std::max(height(t->left), height(t->right));
  }
};

TYPED_TEST_SUITE(TreeLowLevel, BalanceTypes);

TYPED_TEST(TreeLowLevel, JoinOfManuallyBuiltSides) {
  using ops = typename TestFixture::ops_type;
  // join(l, m, r) with wildly unbalanced side sizes must rebalance.
  for (auto [nl, nr] : {std::pair<size_t, size_t>{1000, 1}, {1, 1000}, {500, 500},
                        {0, 100}, {100, 0}, {0, 0}}) {
    // keys: left < mid < right
    std::vector<std::pair<uint64_t, uint64_t>> le, re;
    for (size_t i = 0; i < nl; i++) le.push_back({i, 1});
    for (size_t i = 0; i < nr; i++) re.push_back({1000000 + i, 1});
    auto* l = ops::from_sorted_unique(le.data(), le.size());
    auto* r = ops::from_sorted_unique(re.data(), re.size());
    auto* m = ops::make_single(500000, 7);
    auto* t = ops::join(l, m, r);
    EXPECT_TRUE(ops::check_valid(t)) << nl << "/" << nr;
    EXPECT_EQ(ops::size(t), nl + nr + 1);
    EXPECT_EQ(ops::aug_val(t), nl + nr + 7);
    ops::dec(t);
  }
}

TYPED_TEST(TreeLowLevel, RepeatedJoin2Concatenation) {
  using ops = typename TestFixture::ops_type;
  // concatenate many runs with join2; result stays valid and ordered.
  typename TestFixture::ops_type::node* acc = nullptr;
  for (int run = 0; run < 50; run++) {
    std::vector<std::pair<uint64_t, uint64_t>> es;
    for (int i = 0; i < 40; i++)
      es.push_back({static_cast<uint64_t>(run * 1000 + i), 1});
    acc = ops::join2(acc, ops::from_sorted_unique(es.data(), es.size()));
  }
  EXPECT_EQ(ops::size(acc), 50u * 40u);
  EXPECT_TRUE(ops::check_valid(acc));
  ops::dec(acc);
}

TYPED_TEST(TreeLowLevel, SplitConsumesAndPreservesEntries) {
  using ops = typename TestFixture::ops_type;
  int64_t base = ops::used_nodes();
  auto* t = TestFixture::build_n(5000, 3);
  uint64_t pivot = t->key;
  auto s = ops::split(t, pivot);
  ASSERT_NE(s.mid, nullptr);  // the root key is in the tree
  EXPECT_TRUE(ops::check_valid(s.left));
  EXPECT_TRUE(ops::check_valid(s.right));
  EXPECT_EQ(ops::size(s.left) + ops::size(s.right) + 1, 5000u);
  ops::dec(s.left);
  ops::dec(s.mid);
  ops::dec(s.right);
  EXPECT_EQ(ops::used_nodes(), base);  // split+frees leak nothing
}

TYPED_TEST(TreeLowLevel, HeightStaysLogarithmic) {
  // Build by sequential insertion (worst case for naive BSTs); every scheme
  // must keep height within its theoretical factor of log2(n).
  using ops = typename TestFixture::ops_type;
  typename TestFixture::ops_type::node* t = nullptr;
  const size_t n = 1 << 14;
  for (size_t i = 0; i < n; i++) {
    t = ops::insert(t, i, i, [](uint64_t, uint64_t b) { return b; });
  }
  double h = static_cast<double>(TestFixture::height(t));
  double logn = std::log2(static_cast<double>(n));
  // AVL <= 1.44 log n; RB <= 2 log n; WB(2/7) <= ~2.06 log n;
  // treap is expected O(log n) w.h.p. — allow 3x for all.
  EXPECT_LE(h, 3.0 * logn) << "height " << h << " for n=" << n;
  EXPECT_TRUE(ops::check_valid(t));
  ops::dec(t);
}

TYPED_TEST(TreeLowLevel, SharedSubtreeRefcounts) {
  using ops = typename TestFixture::ops_type;
  auto* t = TestFixture::build_n(1000, 4);
  // Taking a logical copy bumps the root count only.
  auto* c = ops::inc(t);
  EXPECT_EQ(ops::ref_count(t), 2u);
  // An insert into the copy path-copies; the original is untouched.
  auto* t2 = ops::insert(c, 42, 42, [](uint64_t, uint64_t b) { return b; });
  EXPECT_TRUE(ops::check_valid(t));
  EXPECT_TRUE(ops::check_valid(t2));
  EXPECT_EQ(ops::ref_count(t), 1u);  // t2 holds child refs, not the root
  ops::dec(t2);
  EXPECT_TRUE(ops::check_valid(t));
  ops::dec(t);
}

TYPED_TEST(TreeLowLevel, AugMaintainedThroughRawJoins) {
  using ops = typename TestFixture::ops_type;
  // Alternate splits and joins; cached sums must stay exact throughout
  // (check_valid recomputes them bottom-up).
  auto* t = TestFixture::build_n(4096, 5);
  pam::random_gen g(6);
  for (int round = 0; round < 30; round++) {
    uint64_t k = g.next();
    auto s = ops::split(t, k);
    if (s.mid == nullptr) s.mid = ops::make_single(k, 1);
    t = ops::join(s.left, s.mid, s.right);
    ASSERT_TRUE(ops::check_valid(t)) << "round " << round;
  }
  ops::dec(t);
}

TYPED_TEST(TreeLowLevel, TakeLeqGeqShareNodes) {
  using ops = typename TestFixture::ops_type;
  auto* t = TestFixture::build_n(100000, 7);
  int64_t before = ops::used_nodes();
  auto* lo = ops::take_leq(t, t->key);
  int64_t fresh = ops::used_nodes() - before;
  // take_leq allocates O(log n) nodes, not O(size of result).
  EXPECT_LT(fresh, 200);
  EXPECT_TRUE(ops::check_valid(lo));
  ops::dec(lo);
  ops::dec(t);
}

// Weight-balanced specifics: the alpha = 2/7 invariant is what check()
// verifies; make sure adversarial shapes (sorted, organ-pipe) pass.
TEST(WeightBalancedShape, AdversarialInsertOrders) {
  using ops = pam::aug_ops<entry, pam::weight_balanced>;
  for (int shape = 0; shape < 3; shape++) {
    ops::node* t = nullptr;
    for (int i = 0; i < 20000; i++) {
      uint64_t k;
      if (shape == 0) k = static_cast<uint64_t>(i);              // ascending
      else if (shape == 1) k = static_cast<uint64_t>(20000 - i); // descending
      else k = static_cast<uint64_t>((i % 2) ? i : 100000 - i);  // organ pipe
      t = ops::insert(t, k, 1, [](uint64_t a, uint64_t) { return a; });
    }
    EXPECT_TRUE(ops::check_valid(t)) << "shape " << shape;
    ops::dec(t);
  }
}

// Red-black specifics: blackened roots may add a level per join, but the
// black-height bound keeps total height <= 2 log2(n+1).
TEST(RedBlackShape, HeightBoundAfterUnions) {
  using ops = pam::aug_ops<entry, pam::red_black>;
  ops::node* acc = nullptr;
  for (int r = 0; r < 64; r++) {
    std::vector<std::pair<uint64_t, uint64_t>> es;
    pam::random_gen g(r);
    for (int i = 0; i < 1000; i++) es.push_back({g.next(), 1});
    auto* b = ops::build(std::move(es), [](uint64_t, uint64_t v) { return v; });
    acc = ops::union_(acc, b, [](uint64_t a, uint64_t) { return a; });
    ASSERT_TRUE(ops::check_valid(acc));
  }
  size_t n = ops::size(acc);
  std::function<size_t(const ops::node*)> ht = [&](const ops::node* t) -> size_t {
    return t ? 1 + std::max(ht(t->left), ht(t->right)) : 0;
  };
  EXPECT_LE(static_cast<double>(ht(acc)),
            2.2 * std::log2(static_cast<double>(n) + 1));
  ops::dec(acc);
}

// Treap specifics: structure is a pure function of the key set. This is a
// property of the one-entry-per-node layout: leaf-block boundaries depend on
// insertion history, so the check pins the unblocked layout for its duration.
TEST(TreapShape, DeterministicShapeForKeySet) {
  using ops = pam::aug_ops<entry, pam::treap>;
  size_t saved_b = pam::leaf_block_size();
  pam::set_leaf_block_size(0);
  auto build_in_order = [](const std::vector<uint64_t>& keys) {
    ops::node* t = nullptr;
    for (auto k : keys) t = ops::insert(t, k, k, [](uint64_t, uint64_t b) { return b; });
    return t;
  };
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 2000; i++) keys.push_back(pam::hash64(i));
  auto* a = build_in_order(keys);
  std::reverse(keys.begin(), keys.end());
  auto* b = build_in_order(keys);
  // Same key set => identical shape (compare preorder key sequences).
  std::function<void(const ops::node*, std::vector<uint64_t>&)> pre =
      [&](const ops::node* t, std::vector<uint64_t>& out) {
        if (!t) return;
        out.push_back(t->key);
        pre(t->left, out);
        pre(t->right, out);
      };
  std::vector<uint64_t> pa, pb;
  pre(a, pa);
  pre(b, pb);
  EXPECT_EQ(pa, pb);
  ops::dec(a);
  ops::dec(b);
  pam::set_leaf_block_size(saved_b);
}

}  // namespace
