// Tests for the weighted inverted index (paper Section 5.3) against
// brute-force postings computed from the raw corpus, plus concurrency
// tests for snapshot-isolated queries.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/corpus.h"
#include "apps/inverted_index.h"
#include "util/random.h"

namespace {

using pam::corpus_word;
using pam::inverted_index;
using pam::posting;

using brute_index = std::map<std::string, std::map<uint32_t, float>>;

brute_index brute_of(const std::vector<posting>& ts) {
  brute_index idx;
  for (auto& t : ts) {
    auto& slot = idx[corpus_word(t.word)];
    auto it = slot.find(t.doc);
    if (it == slot.end())
      slot[t.doc] = t.weight;
    else
      it->second = std::max(it->second, t.weight);
  }
  return idx;
}

std::vector<posting> small_corpus(uint64_t seed, size_t n, uint32_t vocab,
                                  uint32_t docs) {
  std::vector<posting> ts(n);
  pam::random_gen g(seed);
  for (auto& t : ts) {
    t.word = static_cast<uint32_t>(g.next() % vocab);
    t.doc = static_cast<uint32_t>(g.next() % docs);
    t.weight = static_cast<float>((g.next() % 1000) + 1);
  }
  return ts;
}

TEST(InvertedIndex, BuildProducesAllTerms) {
  auto ts = small_corpus(1, 20000, 50, 200);
  auto oracle = brute_of(ts);
  inverted_index idx(ts);
  EXPECT_EQ(idx.num_terms(), oracle.size());
  for (auto& [term, docs] : oracle) {
    auto pm = idx.postings(term);
    ASSERT_EQ(pm.size(), docs.size()) << term;
    for (auto& [d, w] : docs) {
      auto got = pm.find(d);
      ASSERT_TRUE(got.has_value());
      ASSERT_FLOAT_EQ(*got, w);
    }
  }
}

TEST(InvertedIndex, MissingTermIsEmpty) {
  inverted_index idx(small_corpus(2, 1000, 10, 50));
  EXPECT_TRUE(idx.postings("zzzznotaword").empty());
  EXPECT_TRUE(idx.query_and("zzzznotaword", corpus_word(0)).empty());
}

TEST(InvertedIndex, AndQueryMatchesBruteForce) {
  auto ts = small_corpus(3, 30000, 30, 300);
  auto oracle = brute_of(ts);
  inverted_index idx(ts);
  for (uint32_t a = 0; a < 10; a++) {
    for (uint32_t b = 0; b < 10; b++) {
      auto w1 = corpus_word(a), w2 = corpus_word(b);
      auto got = idx.query_and(w1, w2);
      auto &d1 = oracle[w1], &d2 = oracle[w2];
      std::map<uint32_t, float> want;
      for (auto& [d, w] : d1) {
        auto it = d2.find(d);
        if (it != d2.end()) want[d] = w + it->second;
      }
      ASSERT_EQ(got.size(), want.size()) << w1 << " AND " << w2;
      for (auto& [d, w] : want) ASSERT_FLOAT_EQ(got.find(d).value(), w);
    }
  }
}

TEST(InvertedIndex, OrQueryMatchesBruteForce) {
  auto ts = small_corpus(4, 20000, 25, 200);
  auto oracle = brute_of(ts);
  inverted_index idx(ts);
  for (uint32_t a = 0; a < 8; a++) {
    uint32_t b = a + 7;
    auto w1 = corpus_word(a), w2 = corpus_word(b % 25);
    auto got = idx.query_or(w1, w2);
    auto &d1 = oracle[w1], &d2 = oracle[w2];
    std::map<uint32_t, float> want = d1;
    for (auto& [d, w] : d2) {
      auto it = want.find(d);
      if (it == want.end())
        want[d] = w;
      else
        it->second += w;
    }
    ASSERT_EQ(got.size(), want.size());
    for (auto& [d, w] : want) ASSERT_FLOAT_EQ(got.find(d).value(), w);
  }
}

TEST(InvertedIndex, MultiTermAnd) {
  auto ts = small_corpus(5, 40000, 20, 100);
  auto oracle = brute_of(ts);
  inverted_index idx(ts);
  std::vector<std::string> terms = {corpus_word(0), corpus_word(1), corpus_word(2)};
  auto got = idx.query_and_all(terms);
  std::set<uint32_t> want;
  for (auto& [d, w] : oracle[terms[0]]) {
    if (oracle[terms[1]].count(d) && oracle[terms[2]].count(d)) want.insert(d);
  }
  ASSERT_EQ(got.size(), want.size());
  got.for_each([&](uint32_t d, float) { ASSERT_TRUE(want.count(d)); });
}

TEST(InvertedIndex, TopKReturnsHeaviestInOrder) {
  auto ts = small_corpus(6, 30000, 15, 2000);
  auto oracle = brute_of(ts);
  inverted_index idx(ts);
  for (uint32_t a = 0; a < 5; a++) {
    auto term = corpus_word(a);
    auto pm = idx.postings(term);
    for (size_t k : {1, 5, 10, 100, 100000}) {
      auto got = inverted_index::top_k(pm, k);
      // oracle: sort postings by weight descending
      std::vector<std::pair<uint32_t, float>> all(oracle[term].begin(),
                                                  oracle[term].end());
      std::sort(all.begin(), all.end(),
                [](auto& x, auto& y) { return x.second > y.second; });
      size_t expect_n = std::min(k, all.size());
      ASSERT_EQ(got.size(), expect_n);
      for (size_t i = 0; i < expect_n; i++) {
        // weights must match position-by-position (docs may tie)
        ASSERT_FLOAT_EQ(got[i].second, all[i].second) << "k=" << k << " i=" << i;
      }
      // descending order
      for (size_t i = 1; i < got.size(); i++)
        ASSERT_GE(got[i - 1].second, got[i].second);
    }
  }
}

TEST(InvertedIndex, TopKOfAndQuery) {
  // The paper's query: intersect two posting lists, return the 10 heaviest.
  auto ts = small_corpus(7, 60000, 10, 3000);
  auto oracle = brute_of(ts);
  inverted_index idx(ts);
  auto w1 = corpus_word(0), w2 = corpus_word(1);
  auto result = idx.query_and(w1, w2);
  auto top = inverted_index::top_k(result, 10);
  std::vector<std::pair<uint32_t, float>> want;
  for (auto& [d, w] : oracle[w1]) {
    auto it = oracle[w2].find(d);
    if (it != oracle[w2].end()) want.push_back({d, w + it->second});
  }
  std::sort(want.begin(), want.end(),
            [](auto& x, auto& y) { return x.second > y.second; });
  ASSERT_EQ(top.size(), std::min<size_t>(10, want.size()));
  for (size_t i = 0; i < top.size(); i++) ASSERT_FLOAT_EQ(top[i].second, want[i].second);
}

TEST(InvertedIndex, FilterAboveMatchesScan) {
  auto ts = small_corpus(8, 20000, 10, 500);
  inverted_index idx(ts);
  auto pm = idx.postings(corpus_word(0));
  float theta = 800.0f;
  auto got = inverted_index::filter_above(pm, theta);
  size_t want = 0;
  pm.for_each([&](uint32_t, float w) {
    if (w > theta) want++;
  });
  EXPECT_EQ(got.size(), want);
  got.for_each([&](uint32_t, float w) { EXPECT_GT(w, theta); });
}

TEST(InvertedIndex, ZipfCorpusGeneratorShape) {
  // The synthetic corpus must be Zipf-skewed: the most frequent word's
  // posting list should dwarf the median one.
  pam::corpus_params p;
  p.vocabulary = 2000;
  p.num_docs = 500;
  p.words_per_doc = 100;
  auto c = pam::make_corpus(p);
  ASSERT_EQ(c.triples.size(), 50000u);
  std::map<uint32_t, size_t> freq;
  for (auto& t : c.triples) freq[t.word]++;
  // rank 0 must be much more frequent than rank 100
  ASSERT_TRUE(freq.count(0));
  ASSERT_GT(freq[0], 20 * std::max<size_t>(freq.count(100) ? freq[100] : 1, 1) / 10);
  // determinism
  auto c2 = pam::make_corpus(p);
  EXPECT_EQ(c.triples.size(), c2.triples.size());
  EXPECT_EQ(c.triples[123].word, c2.triples[123].word);
  EXPECT_EQ(c.triples[123].doc, c2.triples[123].doc);
}

TEST(InvertedIndex, ConcurrentQueriesOnSharedIndex) {
  // The paper's concurrency experiment: many users intersect shared posting
  // lists at once, each building private result maps.
  auto ts = small_corpus(9, 100000, 40, 2000);
  auto oracle = brute_of(ts);
  inverted_index idx(ts);
  std::atomic<int> failures{0};
  std::vector<std::thread> users;
  for (int u = 0; u < 8; u++) {
    users.emplace_back([&, u] {
      pam::random_gen g(u + 1);
      for (int q = 0; q < 200; q++) {
        auto w1 = corpus_word(g.next() % 40);
        auto w2 = corpus_word(g.next() % 40);
        auto res = idx.query_and(w1, w2);
        size_t want = 0;
        for (auto& [d, w] : oracle[w1])
          if (oracle[w2].count(d)) want++;
        if (res.size() != want) failures.fetch_add(1);
        auto top = inverted_index::top_k(res, 10);
        if (top.size() != std::min<size_t>(10, want)) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : users) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
