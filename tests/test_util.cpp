// Tests for the utility layer: hashing, PRNG, Zipf sampling, env knobs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "store/checkpoint.h"
#include "store/wal.h"
#include "util/env.h"
#include "util/random.h"
#include "util/timer.h"
#include "util/zipf.h"

namespace {

TEST(Hash64, DeterministicAndWellMixed) {
  EXPECT_EQ(pam::hash64(42), pam::hash64(42));
  EXPECT_NE(pam::hash64(42), pam::hash64(43));
  // Avalanche smoke check: flipping one input bit flips ~half the output.
  int total_flips = 0;
  for (int bit = 0; bit < 64; bit += 7) {
    uint64_t a = pam::hash64(0x12345678), b = pam::hash64(0x12345678ull ^ (1ull << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  double avg = total_flips / 10.0;
  EXPECT_GT(avg, 20.0);
  EXPECT_LT(avg, 44.0);
}

TEST(RandomGen, StreamsAreReproducibleAndIndependent) {
  pam::random_gen a(5), b(5), c(6);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
  // fork() derives decorrelated streams
  pam::random_gen base(9);
  auto f1 = base.fork(1), f2 = base.fork(2);
  EXPECT_NE(f1.next(), f2.next());
  // ith() is a pure function
  pam::random_gen d(11);
  EXPECT_EQ(d.ith(100), pam::random_gen(11).ith(100));
}

TEST(RandomGen, BoundedAndDoubleRanges) {
  pam::random_gen g(3);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(g.next_bounded(17), 17u);
    double d = g.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomPermutation, IsAPermutation) {
  auto p = pam::random_permutation(1000, 5);
  std::set<uint64_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 999u);
  // not the identity (astronomically unlikely)
  bool identity = true;
  for (size_t i = 0; i < p.size(); i++)
    if (p[i] != i) identity = false;
  EXPECT_FALSE(identity);
}

TEST(Zipf, RanksAreSkewedAndInRange) {
  pam::zipf_generator z(1000, 1.0, 42);
  std::map<size_t, size_t> freq;
  for (int i = 0; i < 200000; i++) {
    size_t r = z();
    ASSERT_LT(r, 1000u);
    freq[r]++;
  }
  // Zipf s=1: f(0)/f(9) ~ 10; allow wide slack.
  ASSERT_TRUE(freq.count(0));
  ASSERT_TRUE(freq.count(9));
  double ratio = static_cast<double>(freq[0]) / static_cast<double>(freq[9]);
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 25.0);
}

TEST(Zipf, Deterministic) {
  pam::zipf_generator a(100, 1.2, 7), b(100, 1.2, 7);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a(), b());
}

TEST(Zipf, FrequenciesMatchTheDistribution) {
  // Empirical rank frequencies must track p(r) = (1/(r+1)^s) / H_{n,s}.
  // With 500k samples the top ranks have tight expected counts; allow 15%
  // relative slack plus a small absolute floor for sampling noise.
  const size_t n = 200;
  const double s = 1.0;
  const int samples = 500000;
  pam::zipf_generator z(n, s, 99);
  std::vector<size_t> freq(n, 0);
  for (int i = 0; i < samples; i++) {
    size_t r = z();
    ASSERT_LT(r, n);
    freq[r]++;
  }
  double harmonic = 0.0;
  for (size_t r = 0; r < n; r++) harmonic += 1.0 / std::pow(double(r + 1), s);
  for (size_t r : {size_t{0}, size_t{1}, size_t{2}, size_t{5}, size_t{10},
                   size_t{50}, size_t{100}}) {
    double expected = samples * (1.0 / std::pow(double(r + 1), s)) / harmonic;
    EXPECT_NEAR(double(freq[r]), expected, 0.15 * expected + 50)
        << "rank " << r;
  }
  // The whole distribution sums to the sample count (no out-of-range hits).
  size_t total = 0;
  for (size_t f : freq) total += f;
  EXPECT_EQ(total, size_t(samples));
}

TEST(Env, ParsesAndDefaults) {
  ::setenv("PAM_TEST_ENV_L", "123", 1);
  EXPECT_EQ(pam::env_long("PAM_TEST_ENV_L", 7), 123);
  EXPECT_EQ(pam::env_long("PAM_TEST_ENV_MISSING", 7), 7);
  ::setenv("PAM_TEST_ENV_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(pam::env_double("PAM_TEST_ENV_D", 1.0), 2.5);
  ::unsetenv("PAM_TEST_ENV_L");
  ::unsetenv("PAM_TEST_ENV_D");
}

TEST(Env, RejectsGarbageAndOutOfRange) {
  // Unparseable values must fall back, not silently become 0.
  ::setenv("PAM_TEST_ENV_BAD", "abc", 1);
  EXPECT_EQ(pam::env_long("PAM_TEST_ENV_BAD", 7), 7);
  EXPECT_DOUBLE_EQ(pam::env_double("PAM_TEST_ENV_BAD", 1.5), 1.5);
  // Trailing garbage after a valid prefix is rejected too.
  ::setenv("PAM_TEST_ENV_BAD", "12abc", 1);
  EXPECT_EQ(pam::env_long("PAM_TEST_ENV_BAD", 7), 7);
  ::setenv("PAM_TEST_ENV_BAD", "2.5x", 1);
  EXPECT_DOUBLE_EQ(pam::env_double("PAM_TEST_ENV_BAD", 1.5), 1.5);
  // Surrounding whitespace is fine.
  ::setenv("PAM_TEST_ENV_BAD", " 42 ", 1);
  EXPECT_EQ(pam::env_long("PAM_TEST_ENV_BAD", 7), 42);
  // Out-of-range magnitudes fall back instead of saturating.
  ::setenv("PAM_TEST_ENV_BAD", "999999999999999999999999999999", 1);
  EXPECT_EQ(pam::env_long("PAM_TEST_ENV_BAD", 7), 7);
  ::setenv("PAM_TEST_ENV_BAD", "1e99999", 1);
  EXPECT_DOUBLE_EQ(pam::env_double("PAM_TEST_ENV_BAD", 1.5), 1.5);
  // Negatives still parse.
  ::setenv("PAM_TEST_ENV_BAD", "-3", 1);
  EXPECT_EQ(pam::env_long("PAM_TEST_ENV_BAD", 7), -3);
  ::unsetenv("PAM_TEST_ENV_BAD");
}

// The knob catalogue (env.h env_knobs) is the provenance record benches dump
// next to their JSON rows; its invariants are what make it greppable and
// mergeable. Completeness against the tree is enforced by pam_lint's
// env-catalogue rule, which scans every source for PAM_* reads.
TEST(Env, KnobCatalogueInvariants) {
  const auto& knobs = pam::env_knobs();
  ASSERT_FALSE(knobs.empty());
  for (size_t i = 0; i < knobs.size(); i++) {
    const auto& k = knobs[i];
    EXPECT_EQ(std::string(k.name).rfind("PAM_", 0), 0u)
        << k.name << ": catalogue is for PAM_* knobs only";
    EXPECT_NE(std::string(k.layer), "") << k.name;
    EXPECT_NE(std::string(k.fallback), "") << k.name;
    EXPECT_NE(std::string(k.what), "") << k.name;
    if (i > 0) {
      EXPECT_LT(std::string(knobs[i - 1].name), std::string(k.name))
          << "catalogue must stay sorted and duplicate-free at " << k.name;
    }
  }
}

TEST(Env, KnobValueReportsEnvironmentOrFallback) {
  pam::env_knob k{"PAM_TEST_ENV_KNOB", "test", "fallback-text", "a test knob"};
  ::unsetenv("PAM_TEST_ENV_KNOB");
  EXPECT_EQ(pam::env_knob_value(k), "fallback-text");
  ::setenv("PAM_TEST_ENV_KNOB", "live-value", 1);
  EXPECT_EQ(pam::env_knob_value(k), "live-value");
  // The catalogue reports what the environment literally says, even when the
  // point-of-use parser would reject it and fall back.
  ::setenv("PAM_TEST_ENV_KNOB", "12abc", 1);
  EXPECT_EQ(pam::env_knob_value(k), "12abc");
  ::unsetenv("PAM_TEST_ENV_KNOB");
}

// Durability knobs ride the same validated parsers: garbage and
// out-of-range values fall back to the default, then clamp to sane bounds.
TEST(Env, WalConfigKnobs) {
  ::unsetenv("PAM_WAL_SEGMENT_BYTES");
  ::unsetenv("PAM_WAL_SYNC_EVERY");
  auto def = pam::store::wal_config::from_env();
  EXPECT_EQ(def.segment_bytes, uint64_t{4} << 20);
  EXPECT_EQ(def.sync_every, 1);

  ::setenv("PAM_WAL_SEGMENT_BYTES", "131072", 1);
  ::setenv("PAM_WAL_SYNC_EVERY", "16", 1);
  auto set = pam::store::wal_config::from_env();
  EXPECT_EQ(set.segment_bytes, uint64_t{131072});
  EXPECT_EQ(set.sync_every, 16);

  // Below the floor: clamped, not honored (a 1-byte segment would rotate
  // on every record).
  ::setenv("PAM_WAL_SEGMENT_BYTES", "1", 1);
  ::setenv("PAM_WAL_SYNC_EVERY", "0", 1);
  auto clamped = pam::store::wal_config::from_env();
  EXPECT_EQ(clamped.segment_bytes, uint64_t{64} * 1024);
  EXPECT_EQ(clamped.sync_every, 1);

  // Trailing garbage: the validated parser rejects, default survives.
  ::setenv("PAM_WAL_SEGMENT_BYTES", "1048576kb", 1);
  ::setenv("PAM_WAL_SYNC_EVERY", "2x", 1);
  auto bad = pam::store::wal_config::from_env();
  EXPECT_EQ(bad.segment_bytes, uint64_t{4} << 20);
  EXPECT_EQ(bad.sync_every, 1);

  ::unsetenv("PAM_WAL_SEGMENT_BYTES");
  ::unsetenv("PAM_WAL_SYNC_EVERY");
}

TEST(Env, CkptConfigKnobs) {
  ::unsetenv("PAM_CKPT_PAGE_BYTES");
  ::unsetenv("PAM_CKPT_MAX_CHAIN");
  ::unsetenv("PAM_CKPT_INCR_RATIO");
  auto def = pam::store::ckpt_config::from_env();
  EXPECT_EQ(def.page_bytes, size_t{1} << 20);
  EXPECT_EQ(def.max_chain, 8);
  EXPECT_DOUBLE_EQ(def.incr_max_ratio, 0.5);

  ::setenv("PAM_CKPT_PAGE_BYTES", "65536", 1);
  ::setenv("PAM_CKPT_MAX_CHAIN", "3", 1);
  ::setenv("PAM_CKPT_INCR_RATIO", "0.25", 1);
  auto set = pam::store::ckpt_config::from_env();
  EXPECT_EQ(set.page_bytes, size_t{65536});
  EXPECT_EQ(set.max_chain, 3);
  EXPECT_DOUBLE_EQ(set.incr_max_ratio, 0.25);

  // Clamps: page floor 4 KiB / ceiling 64 MiB, chain >= 1, ratio in [0, 1].
  ::setenv("PAM_CKPT_PAGE_BYTES", "16", 1);
  ::setenv("PAM_CKPT_MAX_CHAIN", "0", 1);
  ::setenv("PAM_CKPT_INCR_RATIO", "7.5", 1);
  auto clamped = pam::store::ckpt_config::from_env();
  EXPECT_EQ(clamped.page_bytes, size_t{4} * 1024);
  EXPECT_EQ(clamped.max_chain, 1);
  EXPECT_DOUBLE_EQ(clamped.incr_max_ratio, 1.0);

  ::setenv("PAM_CKPT_PAGE_BYTES", "999999999999999999999999", 1);  // ERANGE
  ::setenv("PAM_CKPT_MAX_CHAIN", "abc", 1);
  ::setenv("PAM_CKPT_INCR_RATIO", "-0.5", 1);
  auto bad = pam::store::ckpt_config::from_env();
  EXPECT_EQ(bad.page_bytes, size_t{1} << 20);
  EXPECT_EQ(bad.max_chain, 8);
  EXPECT_DOUBLE_EQ(bad.incr_max_ratio, 0.0);  // parsed, then clamped up

  ::unsetenv("PAM_CKPT_PAGE_BYTES");
  ::unsetenv("PAM_CKPT_MAX_CHAIN");
  ::unsetenv("PAM_CKPT_INCR_RATIO");
}

TEST(ScaledSize, RespectsScaleEnv) {
  ::unsetenv("PAM_BENCH_SCALE");
  EXPECT_EQ(pam::scaled_size(1000), 1000u);
  ::setenv("PAM_BENCH_SCALE", "0.5", 1);
  EXPECT_EQ(pam::scaled_size(1000), 500u);
  ::setenv("PAM_BENCH_SCALE", "0.00001", 1);
  EXPECT_EQ(pam::scaled_size(1000), 1u);  // never scales to zero
  ::unsetenv("PAM_BENCH_SCALE");
}

TEST(Timer, MeasuresElapsedTime) {
  pam::timer t;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 2000000; i++) sink = sink + pam::hash64(i);
  double e = t.elapsed();
  EXPECT_GT(e, 0.0);
  t.reset();
  EXPECT_LT(t.elapsed(), e + 1.0);
}

}  // namespace
