// Large-scale integration tests: million-element workloads that exercise
// the parallel code paths end to end (parallel build, parallel union,
// parallel GC, big multi-inserts) and verify global invariants cheaply
// (sums, sizes, sampled lookups) rather than entry-by-entry.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "apps/range_sum.h"
#include "pam/pam.h"
#include "util/random.h"

namespace {

using map_t = pam::range_sum_map;
using entry_t = map_t::entry_t;

std::vector<entry_t> gen(size_t n, uint64_t seed) {
  std::vector<entry_t> v(n);
  pam::parallel_for(0, n, [&](size_t i) {
    v[i] = {pam::hash64(seed * 1000003 + i), pam::hash64(seed * 7 + i) % 1000};
  });
  return v;
}

TEST(LargeParallel, MillionEntryBuildSumsExactly) {
  const size_t n = 2'000'000;
  auto es = gen(n, 1);
  map_t m(es, [](uint64_t a, uint64_t b) { return a + b; });
  // With 64-bit random keys, collisions are ~0; but compute the oracle sum
  // regardless of whether any occurred.
  uint64_t expect = 0;
  for (auto& e : es) expect += e.second;
  EXPECT_EQ(m.aug_val(), expect);
  EXPECT_TRUE(m.check_valid());
}

TEST(LargeParallel, BigUnionConservesAugSum) {
  const size_t n = 1'000'000;
  map_t a(gen(n, 2)), b(gen(n, 3));
  // Disjoint with overwhelming probability; with combine=+, the union's sum
  // equals the sum of sums even if keys do collide.
  auto u = map_t::map_union(a, b, [](uint64_t x, uint64_t y) { return x + y; });
  EXPECT_EQ(u.aug_val(), a.aug_val() + b.aug_val());
  EXPECT_LE(u.size(), a.size() + b.size());
  EXPECT_TRUE(u.check_valid());
}

TEST(LargeParallel, RepeatedBigMultiInsertBatches) {
  map_t m;
  uint64_t expect = 0;
  for (int batch = 0; batch < 8; batch++) {
    auto es = gen(250'000, 100 + batch);
    for (auto& e : es) expect += e.second;
    m = map_t::multi_insert(std::move(m), std::move(es),
                            [](uint64_t a, uint64_t b) { return a + b; });
  }
  EXPECT_EQ(m.aug_val(), expect);
  EXPECT_TRUE(m.check_valid());
}

TEST(LargeParallel, ParallelQueriesAgreeWithSequential) {
  const size_t n = 1'000'000;
  map_t m(gen(n, 4));
  // Partition sums computed in parallel must add up to the total.
  const size_t parts = 64;
  std::vector<uint64_t> sums(parts);
  uint64_t stride = ~0ull / parts;
  pam::parallel_for(0, parts, [&](size_t i) {
    uint64_t lo = i * stride;
    uint64_t hi = (i + 1 == parts) ? ~0ull : (i + 1) * stride - 1;
    sums[i] = m.aug_range(lo, hi);
  }, 1);
  uint64_t total = 0;
  for (auto s : sums) total += s;
  EXPECT_EQ(total, m.aug_val());
}

TEST(LargeParallel, WorkerCountDoesNotChangeResults) {
  const size_t n = 500'000;
  auto es = gen(n, 5);
  int before = pam::num_workers();
  map_t m1, m2;
  pam::set_num_workers(1);
  m1 = map_t(es);
  pam::set_num_workers(before);
  m2 = map_t(es);
  EXPECT_EQ(m1.size(), m2.size());
  EXPECT_EQ(m1.aug_val(), m2.aug_val());
  // identical entry sequences
  EXPECT_EQ(m1.entries(), m2.entries());
}

TEST(LargeParallel, MassiveSharedVersionChurn) {
  // Build one base, derive many versions in parallel via filters of
  // different selectivity; all versions must be independently correct.
  const size_t n = 1'000'000;
  map_t base(gen(n, 6));
  const int versions = 16;
  std::vector<map_t> vs(versions);
  std::atomic<int> failures{0};
  pam::parallel_for(0, versions, [&](size_t i) {
    map_t f = map_t::filter(base, [i](uint64_t k, uint64_t) { return k % (i + 2) == 0; });
    if (!f.check_valid()) failures.fetch_add(1);
    vs[i] = std::move(f);
  }, 1);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(base.check_valid());
  size_t prev = base.size();
  for (int i = 0; i < versions; i++) {
    EXPECT_LT(vs[i].size(), prev);  // selectivity shrinks with i... roughly
    prev = std::max(prev, vs[i].size());
  }
}

TEST(LargeParallel, NoLeaksAcrossHeavyChurn) {
  int64_t base_nodes = map_t::used_nodes();
  for (int round = 0; round < 3; round++) {
    map_t a(gen(400'000, 10 + round));
    map_t b(gen(400'000, 20 + round));
    auto u = map_t::map_union(a, b, [](uint64_t x, uint64_t y) { return x + y; });
    auto d = map_t::map_difference(std::move(u), std::move(a));
    auto f = map_t::filter(std::move(d), [](uint64_t k, uint64_t) { return k & 1; });
    (void)f;
  }
  EXPECT_EQ(map_t::used_nodes(), base_nodes);
}

}  // namespace
