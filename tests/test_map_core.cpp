// Core map-operation tests, run as typed tests over all four balancing
// schemes (weight-balanced, AVL, red-black, treap). Every operation is
// differentially tested against a std::map oracle, and the full structural
// validator (balance invariant + sizes + ordering + cached augmented
// values) runs after each mutation mix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "pam/pam.h"
#include "util/random.h"

namespace {

using K = uint64_t;
using V = uint64_t;

template <typename Balance>
struct schemes {
  using map_t = pam::aug_map<pam::sum_entry<K, V>, Balance>;
};

using BalanceTypes = ::testing::Types<pam::weight_balanced, pam::avl_tree,
                                      pam::red_black, pam::treap>;

template <typename Balance>
class MapCore : public ::testing::Test {
 public:
  using map_type = typename schemes<Balance>::map_t;
  using entry_type = typename map_type::entry_t;

  static std::vector<entry_type> random_entries(size_t n, uint64_t seed,
                                             uint64_t key_range) {
    std::vector<entry_type> es(n);
    pam::random_gen g(seed);
    for (auto& e : es) e = {g.next() % key_range, g.next() % 1000};
    return es;
  }

  static std::map<K, V> oracle_of(const std::vector<entry_type>& es) {
    std::map<K, V> m;
    for (auto& e : es) m[e.first] = e.second;  // last write wins
    return m;
  }

  static void expect_equal(const map_type& m, const std::map<K, V>& oracle) {
    ASSERT_EQ(m.size(), oracle.size());
    auto es = m.entries();
    size_t i = 0;
    for (auto& [k, v] : oracle) {
      ASSERT_EQ(es[i].first, k);
      ASSERT_EQ(es[i].second, v);
      i++;
    }
  }
};

TYPED_TEST_SUITE(MapCore, BalanceTypes);

// ------------------------------------------------------------- building --

TYPED_TEST(MapCore, EmptyMap) {
  typename TestFixture::map_type m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.find(42).has_value());
  EXPECT_FALSE(m.first().has_value());
  EXPECT_FALSE(m.last().has_value());
  EXPECT_TRUE(m.check_valid());
}

TYPED_TEST(MapCore, SingletonAndSmall) {
  using map_t = typename TestFixture::map_type;
  auto m = map_t::singleton(5, 50);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.find(5).value(), 50u);
  EXPECT_FALSE(m.find(6).has_value());
  map_t m2 = {{1, 10}, {2, 20}, {3, 30}};
  EXPECT_EQ(m2.size(), 3u);
  EXPECT_EQ(m2.find(2).value(), 20u);
  EXPECT_TRUE(m2.check_valid());
}

TYPED_TEST(MapCore, BuildMatchesOracleAcrossSizes) {
  using map_t = typename TestFixture::map_type;
  for (size_t n : {0, 1, 2, 3, 10, 100, 1000, 50000}) {
    auto es = TestFixture::random_entries(n, n * 31 + 1, n == 0 ? 1 : 4 * n);
    map_t m(es);
    ASSERT_TRUE(m.check_valid()) << "n=" << n;
    TestFixture::expect_equal(m, TestFixture::oracle_of(es));
  }
}

TYPED_TEST(MapCore, BuildWithManyDuplicatesCombines) {
  using map_t = typename TestFixture::map_type;
  // keys all in [0, 16): heavy duplication; combine = sum.
  auto es = TestFixture::random_entries(10000, 7, 16);
  map_t m(es, [](V a, V b) { return a + b; });
  std::map<K, V> oracle;
  for (auto& e : es) oracle[e.first] += e.second;
  ASSERT_TRUE(m.check_valid());
  TestFixture::expect_equal(m, oracle);
}

TYPED_TEST(MapCore, BuildAllSameKey) {
  using map_t = typename TestFixture::map_type;
  std::vector<typename map_t::entry_t> es(5000, {7, 1});
  map_t m(es, [](V a, V b) { return a + b; });
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.find(7).value(), 5000u);
}

// --------------------------------------------------------------- insert --

TYPED_TEST(MapCore, InsertSequentialKeysStaysBalancedAndCorrect) {
  using map_t = typename TestFixture::map_type;
  map_t m;
  std::map<K, V> oracle;
  for (K k = 0; k < 4096; k++) {
    m = map_t::insert(std::move(m), k, k * 2);
    oracle[k] = k * 2;
  }
  ASSERT_TRUE(m.check_valid());
  TestFixture::expect_equal(m, oracle);
}

TYPED_TEST(MapCore, InsertReverseAndRandomOrders) {
  using map_t = typename TestFixture::map_type;
  map_t m;
  std::map<K, V> oracle;
  for (K k = 3000; k-- > 0;) {
    m = map_t::insert(std::move(m), k, k);
    oracle[k] = k;
  }
  auto perm = pam::random_permutation(3000, 99);
  for (auto k : perm) {
    m = map_t::insert(std::move(m), k + 10000, k);
    oracle[k + 10000] = k;
  }
  ASSERT_TRUE(m.check_valid());
  TestFixture::expect_equal(m, oracle);
}

TYPED_TEST(MapCore, InsertWithCombineOnExistingKey) {
  using map_t = typename TestFixture::map_type;
  map_t m = {{1, 10}};
  m = map_t::insert(std::move(m), 1, 5,
                    [](V oldv, V newv) { return oldv + newv; });
  EXPECT_EQ(m.find(1).value(), 15u);
  m = map_t::insert(std::move(m), 1, 99);  // default: replace
  EXPECT_EQ(m.find(1).value(), 99u);
  EXPECT_EQ(m.size(), 1u);
}

// --------------------------------------------------------------- remove --

TYPED_TEST(MapCore, RemoveRandomizedAgainstOracle) {
  using map_t = typename TestFixture::map_type;
  auto es = TestFixture::random_entries(8000, 3, 4000);  // with duplicates
  map_t m(es);
  auto oracle = TestFixture::oracle_of(es);
  pam::random_gen g(17);
  for (int i = 0; i < 3000; i++) {
    K k = g.next() % 4000;
    m = map_t::remove(std::move(m), k);
    oracle.erase(k);
  }
  ASSERT_TRUE(m.check_valid());
  TestFixture::expect_equal(m, oracle);
}

TYPED_TEST(MapCore, RemoveMissingKeyIsNoop) {
  using map_t = typename TestFixture::map_type;
  map_t m = {{1, 1}, {3, 3}};
  m = map_t::remove(std::move(m), 2);
  EXPECT_EQ(m.size(), 2u);
  m = map_t::remove(std::move(m), 1);
  m = map_t::remove(std::move(m), 3);
  EXPECT_TRUE(m.empty());
  m = map_t::remove(std::move(m), 5);  // remove from empty
  EXPECT_TRUE(m.empty());
}

// ------------------------------------------------------ search / order --

TYPED_TEST(MapCore, FindEveryKeyAndMisses) {
  using map_t = typename TestFixture::map_type;
  auto es = TestFixture::random_entries(20000, 13, 1u << 30);
  map_t m(es);
  auto oracle = TestFixture::oracle_of(es);
  for (auto& [k, v] : oracle) {
    auto got = m.find(k);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(*got, v);
  }
  pam::random_gen g(77);
  for (int i = 0; i < 1000; i++) {
    K k = g.next();
    ASSERT_EQ(m.find(k).has_value(), oracle.count(k) == 1);
  }
}

TYPED_TEST(MapCore, FirstLastPreviousNext) {
  using map_t = typename TestFixture::map_type;
  map_t m = {{10, 1}, {20, 2}, {30, 3}, {40, 4}};
  EXPECT_EQ(m.first()->first, 10u);
  EXPECT_EQ(m.last()->first, 40u);
  EXPECT_EQ(m.previous(25)->first, 20u);
  EXPECT_EQ(m.previous(20)->first, 10u);  // strictly less
  EXPECT_FALSE(m.previous(10).has_value());
  EXPECT_EQ(m.next(25)->first, 30u);
  EXPECT_EQ(m.next(30)->first, 40u);  // strictly greater
  EXPECT_FALSE(m.next(40).has_value());
}

TYPED_TEST(MapCore, RankSelectRoundTrip) {
  using map_t = typename TestFixture::map_type;
  auto es = TestFixture::random_entries(5000, 23, 1u << 20);
  map_t m(es);
  auto sorted = m.entries();
  for (size_t i = 0; i < sorted.size(); i += 37) {
    auto e = m.select(i);
    ASSERT_TRUE(e.has_value());
    ASSERT_EQ(e->first, sorted[i].first);
    ASSERT_EQ(m.rank(e->first), i);
  }
  EXPECT_FALSE(m.select(m.size()).has_value());
  EXPECT_EQ(m.rank(0), 0u);
  EXPECT_EQ(m.rank(~0ull), m.size());
}

// ----------------------------------------------------------- set algebra --

TYPED_TEST(MapCore, UnionDisjointAndOverlapping) {
  using map_t = typename TestFixture::map_type;
  auto ea = TestFixture::random_entries(6000, 1, 10000);
  auto eb = TestFixture::random_entries(6000, 2, 10000);
  map_t a(ea), b(eb);
  auto oa = TestFixture::oracle_of(ea), ob = TestFixture::oracle_of(eb);

  // values combined with +; keys only in one side keep their value
  auto u = map_t::map_union(a, b, [](V x, V y) { return x + y; });
  std::map<K, V> ou = ob;
  for (auto& [k, v] : oa) {
    auto it = ou.find(k);
    if (it == ou.end())
      ou[k] = v;
    else
      it->second = v + it->second;
  }
  ASSERT_TRUE(u.check_valid());
  TestFixture::expect_equal(u, ou);
  // inputs untouched (we passed copies)
  TestFixture::expect_equal(a, oa);
  TestFixture::expect_equal(b, ob);
}

TYPED_TEST(MapCore, UnionDefaultSecondWins) {
  using map_t = typename TestFixture::map_type;
  map_t a = {{1, 10}, {2, 20}};
  map_t b = {{2, 99}, {3, 30}};
  auto u = map_t::map_union(a, b);
  EXPECT_EQ(u.size(), 3u);
  EXPECT_EQ(u.find(2).value(), 99u);
}

TYPED_TEST(MapCore, UnionWithEmptyEitherSide) {
  using map_t = typename TestFixture::map_type;
  map_t a = {{1, 1}, {2, 2}};
  map_t empty;
  auto u1 = map_t::map_union(a, empty);
  auto u2 = map_t::map_union(empty, a);
  TestFixture::expect_equal(u1, {{1, 1}, {2, 2}});
  TestFixture::expect_equal(u2, {{1, 1}, {2, 2}});
}

TYPED_TEST(MapCore, UnionAsymmetricSizes) {
  using map_t = typename TestFixture::map_type;
  // n >> m: the regime where the O(m log(n/m+1)) bound matters.
  auto ea = TestFixture::random_entries(100000, 5, 1u << 28);
  auto eb = TestFixture::random_entries(100, 6, 1u << 28);
  map_t a(ea), b(eb);
  auto ou = TestFixture::oracle_of(ea);
  for (auto& [k, v] : TestFixture::oracle_of(eb)) ou[k] = v;
  auto u = map_t::map_union(a, b);
  ASSERT_TRUE(u.check_valid());
  TestFixture::expect_equal(u, ou);
}

TYPED_TEST(MapCore, IntersectAgainstOracle) {
  using map_t = typename TestFixture::map_type;
  auto ea = TestFixture::random_entries(5000, 8, 3000);
  auto eb = TestFixture::random_entries(5000, 9, 3000);
  map_t a(ea), b(eb);
  auto oa = TestFixture::oracle_of(ea), ob = TestFixture::oracle_of(eb);
  auto i = map_t::map_intersect(a, b, [](V x, V y) { return x * 1000 + y; });
  std::map<K, V> oi;
  for (auto& [k, v] : oa) {
    auto it = ob.find(k);
    if (it != ob.end()) oi[k] = v * 1000 + it->second;
  }
  ASSERT_TRUE(i.check_valid());
  TestFixture::expect_equal(i, oi);
}

TYPED_TEST(MapCore, IntersectDisjointIsEmpty) {
  using map_t = typename TestFixture::map_type;
  map_t a = {{1, 1}, {2, 2}};
  map_t b = {{3, 3}, {4, 4}};
  auto i = map_t::map_intersect(a, b, [](V x, V) { return x; });
  EXPECT_TRUE(i.empty());
}

TYPED_TEST(MapCore, DifferenceAgainstOracle) {
  using map_t = typename TestFixture::map_type;
  auto ea = TestFixture::random_entries(5000, 10, 3000);
  auto eb = TestFixture::random_entries(2500, 11, 3000);
  map_t a(ea), b(eb);
  auto oa = TestFixture::oracle_of(ea);
  auto ob = TestFixture::oracle_of(eb);
  auto d = map_t::map_difference(a, b);
  std::map<K, V> od;
  for (auto& [k, v] : oa)
    if (ob.count(k) == 0) od[k] = v;
  ASSERT_TRUE(d.check_valid());
  TestFixture::expect_equal(d, od);
}

TYPED_TEST(MapCore, SetAlgebraIdentities) {
  using map_t = typename TestFixture::map_type;
  // difference(a, a) = empty; intersect(a, a) = a; union(a, a) = a.
  auto es = TestFixture::random_entries(3000, 12, 2000);
  map_t a(es);
  EXPECT_TRUE(map_t::map_difference(a, a).empty());
  auto i = map_t::map_intersect(a, a, [](V x, V) { return x; });
  TestFixture::expect_equal(i, TestFixture::oracle_of(es));
  auto u = map_t::map_union(a, a);
  TestFixture::expect_equal(u, TestFixture::oracle_of(es));
}

// ----------------------------------------------------- split / concat ---

TYPED_TEST(MapCore, SplitAtPresentAndAbsentKeys) {
  using map_t = typename TestFixture::map_type;
  auto es = TestFixture::random_entries(10000, 14, 1u << 20);
  map_t m(es);
  auto oracle = TestFixture::oracle_of(es);
  // split at an existing key
  K mid = m.select(m.size() / 2)->first;
  auto s = map_t::split(m, mid);
  ASSERT_TRUE(s.value.has_value());
  EXPECT_EQ(*s.value, oracle[mid]);
  ASSERT_TRUE(s.left.check_valid());
  ASSERT_TRUE(s.right.check_valid());
  EXPECT_EQ(s.left.size() + s.right.size() + 1, oracle.size());
  for (auto& e : s.left.entries()) ASSERT_LT(e.first, mid);
  for (auto& e : s.right.entries()) ASSERT_GT(e.first, mid);
  // concat puts them back together (minus the split key)
  auto joined = map_t::concat(s.left, s.right);
  ASSERT_TRUE(joined.check_valid());
  EXPECT_EQ(joined.size(), oracle.size() - 1);
  // split at an absent key
  auto s2 = map_t::split(m, mid + (oracle.count(mid + 1) ? 0 : 1));
  (void)s2;
  auto s3 = map_t::split(m, ~0ull);
  EXPECT_EQ(s3.left.size(), m.size() - (oracle.count(~0ull) ? 1 : 0));
  EXPECT_TRUE(s3.right.empty());
}

// --------------------------------------------------------------- filter --

TYPED_TEST(MapCore, FilterAgainstOracle) {
  using map_t = typename TestFixture::map_type;
  auto es = TestFixture::random_entries(20000, 15, 1u << 20);
  map_t m(es);
  auto oracle = TestFixture::oracle_of(es);
  auto f = map_t::filter(m, [](K k, V v) { return (k + v) % 3 == 0; });
  std::map<K, V> of;
  for (auto& [k, v] : oracle)
    if ((k + v) % 3 == 0) of[k] = v;
  ASSERT_TRUE(f.check_valid());
  TestFixture::expect_equal(f, of);
  TestFixture::expect_equal(m, oracle);  // input copy untouched
}

TYPED_TEST(MapCore, FilterAllAndNone) {
  using map_t = typename TestFixture::map_type;
  auto es = TestFixture::random_entries(2000, 16, 10000);
  map_t m(es);
  auto all = map_t::filter(m, [](K, V) { return true; });
  auto none = map_t::filter(m, [](K, V) { return false; });
  TestFixture::expect_equal(all, TestFixture::oracle_of(es));
  EXPECT_TRUE(none.empty());
}

// ------------------------------------------------- multi-insert/delete --

TYPED_TEST(MapCore, MultiInsertAgainstOracle) {
  using map_t = typename TestFixture::map_type;
  auto base = TestFixture::random_entries(20000, 18, 1u << 16);
  auto ups = TestFixture::random_entries(7000, 19, 1u << 16);
  map_t m(base);
  auto oracle = TestFixture::oracle_of(base);
  auto m2 = map_t::multi_insert(m, ups, [](V oldv, V newv) { return oldv + newv; });
  for (auto& [k, v] : ups) {
    auto it = oracle.find(k);
    if (it == oracle.end())
      oracle[k] = v;
    else
      it->second += v;
  }
  ASSERT_TRUE(m2.check_valid());
  TestFixture::expect_equal(m2, oracle);
}

TYPED_TEST(MapCore, MultiInsertIntoEmptyEqualsBuild) {
  using map_t = typename TestFixture::map_type;
  auto es = TestFixture::random_entries(5000, 20, 4000);
  map_t from_build(es, [](V a, V b) { return a + b; });
  map_t from_mi = map_t::multi_insert(map_t(), es, [](V a, V b) { return a + b; });
  ASSERT_TRUE(from_mi.check_valid());
  EXPECT_EQ(from_build.entries(), from_mi.entries());
}

TYPED_TEST(MapCore, MultiDeleteAgainstOracle) {
  using map_t = typename TestFixture::map_type;
  auto base = TestFixture::random_entries(20000, 21, 1u << 16);
  map_t m(base);
  auto oracle = TestFixture::oracle_of(base);
  std::vector<K> kill;
  pam::random_gen g(5);
  for (int i = 0; i < 8000; i++) kill.push_back(g.next() % (1u << 16));
  auto m2 = map_t::multi_delete(m, kill);
  for (auto k : kill) oracle.erase(k);
  ASSERT_TRUE(m2.check_valid());
  TestFixture::expect_equal(m2, oracle);
}

// ----------------------------------------------------- ranges / mapRed --

TYPED_TEST(MapCore, UpToDownToRange) {
  using map_t = typename TestFixture::map_type;
  auto es = TestFixture::random_entries(10000, 22, 1u << 20);
  map_t m(es);
  auto oracle = TestFixture::oracle_of(es);
  K lo = 1u << 18, hi = 3u << 18;
  auto up = map_t::up_to(m, hi);
  auto down = map_t::down_to(m, lo);
  auto mid = map_t::range(m, lo, hi);
  std::map<K, V> oup, odown, omid;
  for (auto& [k, v] : oracle) {
    if (k <= hi) oup[k] = v;
    if (k >= lo) odown[k] = v;
    if (k >= lo && k <= hi) omid[k] = v;
  }
  ASSERT_TRUE(up.check_valid());
  ASSERT_TRUE(down.check_valid());
  ASSERT_TRUE(mid.check_valid());
  TestFixture::expect_equal(up, oup);
  TestFixture::expect_equal(down, odown);
  TestFixture::expect_equal(mid, omid);
  TestFixture::expect_equal(m, oracle);  // borrow semantics: m unchanged
}

TYPED_TEST(MapCore, RangeBoundariesInclusive) {
  using map_t = typename TestFixture::map_type;
  map_t m = {{10, 1}, {20, 2}, {30, 3}};
  auto r = map_t::range(m, 10, 30);
  EXPECT_EQ(r.size(), 3u);
  auto r2 = map_t::range(m, 11, 29);
  EXPECT_EQ(r2.size(), 1u);
  auto r3 = map_t::range(m, 31, 40);
  EXPECT_TRUE(r3.empty());
  auto r4 = map_t::range(m, 25, 15);  // inverted range is empty
  EXPECT_TRUE(r4.empty());
}

TYPED_TEST(MapCore, MapReduceSumAndCount) {
  using map_t = typename TestFixture::map_type;
  auto es = TestFixture::random_entries(30000, 24, 1u << 28);
  map_t m(es);
  auto oracle = TestFixture::oracle_of(es);
  uint64_t expect_sum = 0;
  for (auto& [k, v] : oracle) expect_sum += v;
  auto got_sum = m.template map_reduce<uint64_t>(
      [](K, V v) { return v; }, [](uint64_t a, uint64_t b) { return a + b; }, 0);
  EXPECT_EQ(got_sum, expect_sum);
  auto got_count = m.template map_reduce<uint64_t>(
      [](K, V) { return uint64_t{1}; },
      [](uint64_t a, uint64_t b) { return a + b; }, 0);
  EXPECT_EQ(got_count, oracle.size());
}

TYPED_TEST(MapCore, EntriesAndForEachAgree) {
  using map_t = typename TestFixture::map_type;
  auto es = TestFixture::random_entries(10000, 25, 1u << 20);
  map_t m(es);
  auto from_entries = m.entries();
  std::vector<typename map_t::entry_t> from_foreach;
  m.for_each([&](K k, V v) { from_foreach.emplace_back(k, v); });
  EXPECT_EQ(from_entries, from_foreach);
  EXPECT_TRUE(std::is_sorted(from_entries.begin(), from_entries.end(),
                             [](auto& a, auto& b) { return a.first < b.first; }));
}

// ------------------------------------------------------ property sweeps --

// Randomized operation mixes with the validator run after every phase;
// parameterized over seeds to get diverse shapes.
TYPED_TEST(MapCore, RandomOpMixKeepsInvariants) {
  using map_t = typename TestFixture::map_type;
  for (uint64_t seed : {1ull, 42ull, 12345ull}) {
    pam::random_gen g(seed);
    map_t m;
    std::map<K, V> oracle;
    for (int phase = 0; phase < 6; phase++) {
      for (int i = 0; i < 600; i++) {
        K k = g.next() % 2048;
        switch (g.next() % 4) {
          case 0:
          case 1: {
            V v = g.next() % 100;
            m = map_t::insert(std::move(m), k, v);
            oracle[k] = v;
            break;
          }
          case 2: {
            m = map_t::remove(std::move(m), k);
            oracle.erase(k);
            break;
          }
          case 3: {
            ASSERT_EQ(m.find(k).has_value(), oracle.count(k) == 1);
            break;
          }
        }
      }
      ASSERT_TRUE(m.check_valid()) << "seed " << seed << " phase " << phase;
      TestFixture::expect_equal(m, oracle);
    }
  }
}

}  // namespace

// --- addition: map_values (the paper's `map`) ------------------------------
namespace {

TYPED_TEST(MapCore, MapValuesTransformsInPlaceShape) {
  using map_t = typename TestFixture::map_type;
  auto es = TestFixture::random_entries(20000, 77, 1u << 20);
  map_t m(es);
  auto oracle = TestFixture::oracle_of(es);
  auto doubled = map_t::map_values(m, [](K, V v) { return v * 2; });
  ASSERT_TRUE(doubled.check_valid());  // balance metadata + aug recomputed
  ASSERT_EQ(doubled.size(), m.size());
  std::map<K, V> want;
  for (auto& [k, v] : oracle) want[k] = v * 2;
  TestFixture::expect_equal(doubled, want);
  TestFixture::expect_equal(m, oracle);  // source untouched
  // augmented sum doubles along with the values
  EXPECT_EQ(doubled.aug_val(), 2 * m.aug_val());
}

TYPED_TEST(MapCore, MapValuesOnEmptyAndSingleton) {
  using map_t = typename TestFixture::map_type;
  map_t empty;
  EXPECT_TRUE(map_t::map_values(empty, [](K, V v) { return v; }).empty());
  auto s = map_t::singleton(3, 30);
  auto t = map_t::map_values(s, [](K k, V v) { return v + k; });
  EXPECT_EQ(t.find(3).value(), 33u);
}

}  // namespace

// --- additions: multi_find and the granularity knob ------------------------
namespace {

TYPED_TEST(MapCore, MultiFindBatchLookup) {
  using map_t = typename TestFixture::map_type;
  auto es = TestFixture::random_entries(30000, 91, 1u << 18);
  map_t m(es);
  auto oracle = TestFixture::oracle_of(es);
  std::vector<K> queries;
  pam::random_gen g(92);
  for (int i = 0; i < 5000; i++) queries.push_back(g.next() % (1u << 18));
  auto got = m.multi_find(queries);
  ASSERT_EQ(got.size(), queries.size());
  for (size_t i = 0; i < queries.size(); i++) {
    auto it = oracle.find(queries[i]);
    ASSERT_EQ(got[i].has_value(), it != oracle.end()) << i;
    if (got[i].has_value()) {
      ASSERT_EQ(*got[i], it->second);
    }
  }
}

TYPED_TEST(MapCore, GranularityKnobDoesNotChangeResults) {
  using map_t = typename TestFixture::map_type;
  auto ea = TestFixture::random_entries(40000, 93, 1u << 18);
  auto eb = TestFixture::random_entries(40000, 94, 1u << 18);
  size_t saved = pam::par_cutoff();
  std::vector<typename map_t::entry_t> results[3];
  size_t cutoffs[3] = {1, 512, 1u << 20};
  for (int c = 0; c < 3; c++) {
    pam::set_par_cutoff(cutoffs[c]);
    map_t a(ea), b(eb);
    auto u = map_t::map_union(a, b, [](V x, V y) { return x + y; });
    EXPECT_TRUE(u.check_valid()) << "cutoff " << cutoffs[c];
    results[c] = u.entries();
  }
  pam::set_par_cutoff(saved);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

}  // namespace
