// Serving-layer example: a concurrent key-value server built from the
// src/server/ subsystem — a sharded_map behind a write_combiner, the
// production shape of the paper's §4 concurrency pattern.
//
//   ./example_kv_server
//
// Scenario: a page-view counter service. Ingest threads stream view events
// (point upserts that the combiner coalesces into per-shard multi_insert
// batches); analytics threads concurrently take consistent cross-shard cuts
// and run stitched range / augmented-sum queries, never blocking ingest.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "pam/pam.h"
#include "server/kv_store.h"

using counter_map = pam::aug_map<pam::sum_entry<uint64_t, uint64_t>>;

int main() {
  // Seed the store with an existing corpus of 200k pages, sharded 8 ways at
  // the key-space quantiles of the initial distribution.
  std::vector<counter_map::entry_t> seed;
  for (uint64_t i = 0; i < 200000; i++)
    seed.push_back({pam::hash64(i) % 1000000, 1});
  pam::kv_store<counter_map> store(
      counter_map(std::move(seed),
                  [](uint64_t a, uint64_t b) { return a + b; }),
      {.num_shards = 8,
       .combiner = {.batch_size = 512,
                    .flush_interval = std::chrono::milliseconds(2)}});
  std::printf("seeded: %zu pages across %zu shards\n", store.size(),
              store.shards().num_shards());

  // Ingest: four client threads stream view events. Each put is one cheap
  // enqueue; the combiner commits them as per-shard bulk merges.
  std::atomic<bool> done{false};
  std::vector<std::thread> ingest;
  for (int t = 0; t < 4; t++) {
    ingest.emplace_back([&, t] {
      pam::random_gen g(t);
      for (int i = 0; i < 50000; i++) {
        uint64_t page = g.next() % 1000000;
        store.put(page, 1);  // overwrite-as-latest; see note below
      }
    });
  }

  // Analytics: consistent cuts + stitched range queries while ingest runs.
  std::thread analytics([&] {
    while (!done.load()) {
      auto snap = store.snapshot();  // O(shards) consistent cut
      uint64_t hot = snap.count_range(0, 99999);
      uint64_t views = snap.aug_range(0, 999999);
      std::printf("  analytics: %zu pages, %llu in hot range, %llu total "
                  "counter mass\n",
                  snap.size(), (unsigned long long)hot,
                  (unsigned long long)views);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  for (auto& t : ingest) t.join();
  done.store(true);
  analytics.join();
  store.flush();  // barrier: every ingested event is committed

  auto st = store.ingest_stats();
  std::printf("ingest: %llu ops enqueued -> %llu committed in %llu batches "
              "(avg %.0f ops/batch)\n",
              (unsigned long long)st.ops_enqueued,
              (unsigned long long)st.ops_committed,
              (unsigned long long)st.batches_flushed,
              st.batches_flushed ? double(st.ops_committed) / double(st.batches_flushed)
                                 : 0.0);

  // Top page in a key range via the stitched views, lazily (no copies).
  auto snap = store.snapshot();
  uint64_t best_key = 0, best_views = 0;
  snap.for_each_range(0, 9999, [&](uint64_t k, uint64_t v) {
    if (v > best_views) { best_views = v; best_key = k; }
  });
  std::printf("final: %zu pages; hottest page in [0, 10^4] is %llu\n",
              store.size(), (unsigned long long)best_key);

  // Note: put() is last-writer-wins. For additive counters, batch the
  // deltas and use put_batch-style merges with a combine function via
  // sharded_map::update_shard — the coalescing layer is value-agnostic.
  return 0;
}
