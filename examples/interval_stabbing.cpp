// Interval-tree example (paper Section 5.1): track user login sessions and
// answer "who is online at time t" queries in logarithmic time.
//
//   ./example_interval_stabbing
//
// An interval tree in PAM is ~15 lines: an augmented map keyed by interval
// with max-right-endpoint augmentation (see src/apps/interval_map.h, which
// this example uses).
#include <cstdio>
#include <vector>

#include "apps/interval_map.h"
#include "util/random.h"

int main() {
  using imap = pam::interval_map<double>;

  // Simulate a day of login sessions: (login, logout) intervals in minutes.
  const size_t users = 500000;
  std::vector<imap::interval> sessions(users);
  pam::random_gen g(2024);
  for (auto& s : sessions) {
    double login = g.next_double() * 1380.0;            // any minute of the day
    double dur = 1.0 + g.next_double() * 59.0;          // 1..60 minutes
    s = {login, login + dur};
  }

  // Parallel O(n log n) construction.
  imap online(sessions);
  std::printf("built interval tree over %zu sessions\n", online.size());

  // Stabbing queries: is anyone online at time t? O(log n) each.
  for (double t : {0.0, 360.0, 720.0, 1439.9}) {
    std::printf("t=%7.1f  anyone online: %s   concurrent sessions: %zu\n", t,
                online.stab(t) ? "yes" : "no ", online.report_all(t).size());
  }

  // The structure is dynamic: sessions can be added/removed persistently.
  online.insert({1440.0, 1500.0});  // a session past midnight
  std::printf("after insert: t=1450 online: %s\n",
              online.stab(1450.0) ? "yes" : "no");

  // report_all is a pruned read-only traversal: cost O(k log(n/k + 1)) for
  // k results, not O(n), and no tree nodes are allocated — find the
  // sessions spanning a full hour boundary.
  auto spanning = online.report_all(720.0);
  double longest = 0;
  for (auto& [l, r] : spanning) longest = std::max(longest, r - l);
  std::printf("sessions covering noon: %zu (longest %.1f min)\n", spanning.size(),
              longest);

  // The underlying map is an ordered range: lazy views answer "sessions
  // starting within an hour window" without copying anything.
  auto hour = online.map().view({600.0, 0.0}, {660.0, 1e18});
  std::printf("sessions starting 10:00-11:00: %zu (latest logout %.1f)\n",
              hour.size(), hour.aug_val());
  return 0;
}
