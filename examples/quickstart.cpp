// Quickstart: define an augmented map type, build it in parallel, and use
// the full interface — insert/union/filter, lazy range views, STL-style
// iteration, and the augmented queries (aug_val / aug_left / aug_range /
// aug_filter).
//
//   ./example_quickstart
//
// This is the paper's running example (Equation 1): an ordered map from
// integer keys to integer values augmented with the sum of values.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "pam/pam.h"

// An augmented map type is described by an "entry" policy (paper Figure 3):
// key/value types, the key ordering, and the augmentation (g, f, identity).
struct sales_entry {
  using key_t = long;  // timestamp of a sale
  using val_t = long;  // sale amount
  using aug_t = long;  // augmented value: total amount
  static bool comp(long a, long b) { return a < b; }
  static long identity() { return 0; }
  static long base(long /*k*/, long v) { return v; }
  static long combine(long a, long b) { return a + b; }
};
using sales_map = pam::aug_map<sales_entry>;

int main() {
  // Build from a (timestamp, amount) batch. Construction is parallel and
  // duplicate keys can be folded with a combine function.
  std::vector<sales_map::entry_t> batch;
  for (long t = 0; t < 1000000; t++) batch.push_back({t, t % 97});
  sales_map sales(batch, [](long a, long b) { return a + b; });
  std::printf("built %zu sales, using %d worker threads\n", sales.size(),
              pam::num_workers());

  // O(1): the augmented value of the whole map (total sales).
  std::printf("total sales           = %ld\n", sales.aug_val());

  // O(log n): sums over key ranges, no scanning.
  std::printf("sales in [100, 200]   = %ld\n", sales.aug_range(100, 200));
  std::printf("sales up to t=500000  = %ld\n", sales.aug_left(500000));

  // Maps are immutable values: updates return new versions in O(log n),
  // and the old version remains fully usable (persistence).
  sales_map v2 = sales_map::insert(sales, 2000000, 999);
  std::printf("v1 size=%zu  v2 size=%zu (v1 untouched)\n", sales.size(), v2.size());

  // Bulk operations run in parallel: union two days of sales, adding
  // amounts for identical timestamps.
  std::vector<sales_map::entry_t> day2;
  for (long t = 500000; t < 1500000; t++) day2.push_back({t, 5});
  sales_map merged = sales_map::map_union(sales, sales_map(day2),
                                          [](long a, long b) { return a + b; });
  std::printf("merged size           = %zu, total = %ld\n", merged.size(),
              merged.aug_val());

  // Filter keeps structure and augmentation intact.
  sales_map big_sales =
      sales_map::filter(merged, [](long, long amount) { return amount > 90; });
  std::printf("sales > 90            : %zu entries, total %ld\n", big_sales.size(),
              big_sales.aug_val());

  // Lazy range views: no nodes are copied, yet the view answers size and
  // augmented-sum queries in O(log n) and iterates in O(k).
  auto window = merged.view(1000, 2000);
  std::printf("window [1000,2000]    : %zu entries, sum %ld\n", window.size(),
              window.aug_val());

  // Maps are C++ ranges: in-order iteration with structured bindings.
  long first_big = -1;
  for (auto [t, amount] : merged.view(0, 5000)) {
    if (amount > 90) {
      first_big = t;
      break;
    }
  }
  std::printf("first sale > 90       at t=%ld\n", first_big);

  // ... and work with <algorithm>: count the window's large sales.
  auto big_in_window = std::count_if(window.begin(), window.end(),
                                     [](auto e) { return e.value > 90; });
  std::printf("window sales > 90     : %ld\n", static_cast<long>(big_in_window));

  // Ordered sets are ranges too.
  pam::pam_set<long> vip({7, 3, 11});
  std::printf("vip timestamps        :");
  for (auto [t, _] : vip) std::printf(" %ld", t);
  std::printf("\n");

  // mapReduce: arbitrary parallel folds over entries.
  long max_amount = merged.map_reduce<long>(
      [](long, long v) { return v; },
      [](long a, long b) { return a > b ? a : b; }, 0);
  std::printf("max single sale       = %ld\n", max_amount);
  return 0;
}
