// Persistence & concurrency example: a versioned key-value store with
// snapshot isolation, built directly from PAM's functional maps and the
// snapshot_box pattern (paper Section 4, "Persistence" and "Concurrency"),
// plus the version-history subsystem on top: structural diffs between
// versions, a checkpointed kv_store with a change feed, and a materialized
// view refreshed incrementally from the feed.
//
//   ./example_versioned_kv
//
// Demonstrates: O(1) snapshots, time-travel across retained versions,
// batched concurrent updates via multi_insert, node sharing between
// versions (measured with the allocator's live-node counter), O(changes)
// version diffs, and incremental view maintenance.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "pam/pam.h"
#include "server/kv_store.h"
#include "server/materialized_view.h"

using kv_map = pam::aug_map<pam::sum_entry<uint64_t, uint64_t>>;

int main() {
  int64_t nodes0 = kv_map::used_nodes();

  // A "database" with a history of retained versions.
  std::vector<kv_map> history;
  kv_map db;
  for (uint64_t batch = 0; batch < 10; batch++) {
    std::vector<kv_map::entry_t> updates;
    for (uint64_t i = 0; i < 100000; i++)
      updates.push_back({pam::hash64(batch * 1000000 + i) % 500000, 1});
    db = kv_map::multi_insert(std::move(db), std::move(updates),
                              [](uint64_t a, uint64_t b) { return a + b; });
    history.push_back(db);  // O(1): versions share structure
  }
  std::printf("10 versions retained; latest has %zu keys\n", db.size());
  std::printf("live nodes: %lld (10 full copies would need ~%lld)\n",
              static_cast<long long>(kv_map::used_nodes() - nodes0),
              static_cast<long long>(10 * db.size()));

  // Time travel: every retained version answers queries independently.
  for (size_t v : {0ul, 4ul, 9ul}) {
    std::printf("version %zu: %zu keys, total count %lu\n", v, history[v].size(),
                history[v].aug_val());
  }

  // A range_view is itself a snapshot (it holds a reference to the tree):
  // scanning one shard of an old version stays consistent no matter what
  // happens to the handle it came from — and keeps that version alive, so
  // scope views to their use.
  {
    auto shard = history[0].view(1000, 1999);
    uint64_t shard_total = 0;
    for (auto [key, count] : shard) shard_total += count;
    std::printf("v0 shard [1000,2000): %zu keys, %lu events (lazy scan, "
                "O(log n) sum: %lu)\n",
                shard.size(), shard_total, shard.aug_val());
  }

  // Snapshot-isolated concurrent access: writers batch updates through a
  // snapshot_box while readers work on consistent O(1) snapshots.
  pam::snapshot_box<kv_map> shared(db);
  std::thread writer([&] {
    for (uint64_t round = 0; round < 20; round++) {
      shared.update([&](kv_map m) {
        std::vector<kv_map::entry_t> batch;
        for (uint64_t i = 0; i < 1000; i++)
          batch.push_back({1000000 + round * 1000 + i, 1});
        return kv_map::multi_insert(std::move(m), std::move(batch));
      });
    }
  });
  std::thread reader([&] {
    size_t last = 0;
    for (int i = 0; i < 1000; i++) {
      kv_map snap = shared.snapshot();
      // Within one snapshot, sums are perfectly consistent, no locks held.
      if (snap.aug_val() < last) std::printf("ERROR: time went backwards!\n");
      last = snap.aug_val();
    }
  });
  writer.join();
  reader.join();
  std::printf("after concurrent updates: %zu keys\n", shared.snapshot().size());

  // Two retained versions differ by what changed, not by their size: the
  // structural diff prunes shared subtrees by pointer, so it runs in
  // O(d log(n/d + 1)) for d changes even on multi-million-key maps.
  {
    kv_map v_old = history[8];
    kv_map v_new = history[9];
    auto d = kv_map::diff(v_old, v_new);
    std::printf("v8 -> v9: %zu keys changed (of %zu); removed/old sum %lu, "
                "added/new sum %lu\n",
                d.size(), v_new.size(), d.before.aug_val(), d.after.aug_val());
    auto stream = d.changes();  // ordered per-key change records
    std::printf("first change: key %lu %s\n", stream[0].key,
                pam::change_kind_name(stream[0].kind));
  }

  // The serving-layer form: a kv_store with version history. checkpoint()
  // flushes pending writes and retains the consistent cut; the change feed
  // streams ordered deltas between checkpoints, and a materialized view
  // (here: total event count) refreshes from the diff instead of rescanning.
  {
    pam::kv_store<kv_map> store(
        kv_map{}, {.splitters = {100000, 200000, 300000},
                   .retain_versions = 16});
    for (uint64_t i = 0; i < 50000; i++) store.put(i * 7 % 400000, 1);
    store.checkpoint();

    auto policy = pam::make_group_aggregate<kv_map, uint64_t>(
        [](uint64_t, uint64_t v) { return v; },
        [](uint64_t a, uint64_t b) { return a + b; },
        [](uint64_t a, uint64_t b) { return a - b; }, uint64_t{0});
    pam::materialized_view<kv_map, decltype(policy)> total(store.history(),
                                                           policy);
    total.rebuild();  // the only full pass this view will ever do

    auto feed = store.feed();
    auto sub = feed.subscribe();
    for (uint64_t i = 0; i < 500; i++) store.put(1000000 + i, 3);
    store.erase(7);
    uint64_t v = store.checkpoint();

    auto batch = feed.poll(sub);
    std::printf("feed drained %zu changes up to version %lu\n",
                batch.changes.size(), batch.to);
    auto st = total.refresh();
    std::printf("view refreshed incrementally: %zu changes applied "
                "(rebuilds so far: %lu), total=%lu at version %lu\n",
                st.changes_applied, total.total_rebuilds(), total.state(), v);
    // Time travel through the store's history ring.
    auto old_snap = store.history().snapshot_at(v - 1);
    if (old_snap.has_value())
      std::printf("version %lu had %zu keys; latest has %zu\n", v - 1,
                  old_snap->size(), store.size());
  }

  // Dropping history reclaims shared nodes exactly once. Versions displaced
  // through a snapshot_box are not freed inline — they park on the epoch
  // limbo lists so lock-free readers mid-acquisition stay safe — so a
  // quiescent epoch::drain() runs those deferred frees (tearing big trees
  // down in parallel) before the leak check.
  history.clear();
  db = kv_map();
  shared.store(kv_map());
  size_t deferred = pam::epoch::pending();
  pam::epoch::drain();
  std::printf("epoch limbo drained (%zu deferred version frees)\n", deferred);
  std::printf("after clearing all versions, leaked nodes: %lld\n",
              static_cast<long long>(kv_map::used_nodes() - nodes0));
  return 0;
}
