// 2D range-tree example (paper Section 5.2): the paper's motivating
// analytics query — "how many users are between 20 and 25 years old and
// have salaries between $50K and $90K?" — answered in O(log^2 n) from a
// nested augmented map (inner maps as augmented values).
//
//   ./example_spatial_analytics
#include <cstdio>
#include <limits>
#include <vector>

#include "apps/range_tree.h"
#include "util/random.h"

int main() {
  using rt = pam::range_tree<double, int64_t>;

  // A population: x = age, y = salary ($K), weight = 1 per person (so range
  // sums count people; any additive weight works, e.g. spending).
  const size_t people = 1000000;
  std::vector<rt::point> pop(people);
  pam::random_gen g(7);
  for (auto& p : pop) {
    p.x = 18.0 + g.next_double() * 62.0;            // age 18..80
    p.y = 20.0 + g.next_double() * 180.0;           // salary 20..200
    p.w = 1;
  }

  rt tree(pop);
  std::printf("built 2D range tree over %zu people\n", tree.size());

  // The paper's query: age in [20, 25], salary in [50, 90].
  int64_t count = tree.query_sum(20.0, 25.0, 50.0, 90.0);
  std::printf("age 20-25 and salary $50K-$90K: %lld people\n",
              static_cast<long long>(count));

  // Sweep an age window across the population (each query is O(log^2 n)).
  std::printf("\n%-12s %12s\n", "age range", "top earners");
  for (double lo = 20; lo < 80; lo += 10) {
    int64_t rich = tree.query_sum(lo, lo + 10, 150.0, 200.0);
    std::printf("%4.0f-%-7.0f %12lld\n", lo, lo + 10,
                static_cast<long long>(rich));
  }

  // Reporting queries list the actual points (O(log^2 n + k)).
  auto sample = tree.query_points(30.0, 30.01, 20.0, 200.0);
  std::printf("\npeople aged exactly ~30: %zu, e.g.:\n", sample.size());
  for (size_t i = 0; i < sample.size() && i < 3; i++) {
    std::printf("  age=%.3f salary=$%.0fK\n", sample[i].x, sample[i].y);
  }

  // Counting via the generic aug_project machinery (same result as sum with
  // unit weights, but works for any weights).
  size_t n_mid = tree.query_count(40.0, 50.0, 80.0, 120.0);
  std::printf("\nage 40-50 with salary $80K-$120K: %zu people\n", n_mid);

  // The outer map is an ordered range over age: a lazy view answers
  // one-dimensional questions (count, iteration) with no copying at all.
  const double inf = std::numeric_limits<double>::max();
  auto band = tree.outer().view({30.0, -inf}, {40.0, inf});
  std::printf("people aged 30-40 (lazy view over the outer map): %zu\n",
              band.size());
  return 0;
}
