// Inverted-index example (paper Section 5.3): build a weighted inverted
// index over a synthetic Zipf corpus and serve ranked boolean queries —
// intersections/unions of posting lists with top-k selection driven by the
// max-weight augmentation.
//
//   ./example_search_engine
#include <cstdio>
#include <string>
#include <vector>

#include "apps/corpus.h"
#include "apps/inverted_index.h"
#include "util/timer.h"

int main() {
  // A synthetic corpus with natural-language-like word frequency skew.
  pam::corpus_params params;
  params.vocabulary = 50000;
  params.num_docs = 20000;
  params.words_per_doc = 150;
  auto corpus = pam::make_corpus(params);
  std::printf("corpus: %zu word occurrences, %zu docs, vocab %zu\n",
              corpus.triples.size(), params.num_docs, params.vocabulary);

  pam::timer t;
  pam::inverted_index index(corpus.triples);
  std::printf("index built in %.3fs: %zu distinct terms\n\n", t.elapsed(),
              index.num_terms());

  // The most frequent words have short names ("a", "b", ...) by corpus
  // construction; query a frequent pair and a frequent/rare pair.
  auto show = [&](const std::string& w1, const std::string& w2) {
    auto and_result = index.query_and(w1, w2);
    auto or_result = index.query_or(w1, w2);
    auto top = pam::inverted_index::top_k(and_result, 5);
    std::printf("query '%s AND %s': %zu docs ('%s OR %s': %zu)\n", w1.c_str(),
                w2.c_str(), and_result.size(), w1.c_str(), w2.c_str(),
                or_result.size());
    for (auto& [doc, w] : top) std::printf("   doc %-8u weight %.3f\n", doc, w);
  };
  show(pam::corpus_word(0), pam::corpus_word(1));
  show(pam::corpus_word(2), pam::corpus_word(4000));

  // Multi-term conjunctions intersect smallest-first.
  auto multi = index.query_and_all(
      {pam::corpus_word(0), pam::corpus_word(1), pam::corpus_word(2)});
  std::printf("\n3-term conjunction: %zu docs\n", multi.size());

  // Posting maps are persistent snapshots: a query's result is a private
  // map that later index updates can never perturb — this is what makes
  // fully concurrent query serving safe (paper Section 6.4).
  auto snapshot = index.postings(pam::corpus_word(0));
  std::printf("snapshot of '%s': %zu docs, max weight %.3f\n",
              pam::corpus_word(0).c_str(), snapshot.size(), snapshot.aug_val());

  // Posting maps are ranges: stream a result lazily (no materialized
  // vectors — the iterator walks the shared tree directly).
  std::printf("first docs of the conjunction:");
  size_t shown = 0;
  for (auto [doc, w] : multi) {
    std::printf(" %u(%.2f)", doc, w);
    if (++shown == 5) break;
  }
  std::printf("\n");

  // A lazy view restricted to a doc-id shard: e.g. docs 1000..1999 of a
  // posting list, with the shard's max weight in O(log n).
  auto shard = snapshot.view(1000, 1999);
  std::printf("shard [1000,2000) of '%s': %zu docs, max weight %.3f\n",
              pam::corpus_word(0).c_str(), shard.size(), shard.aug_val());
  return 0;
}
