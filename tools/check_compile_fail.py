#!/usr/bin/env python3
"""Driver for the concurrency-contract compile-fail tests.

The contract in src/util/thread_annotations.h is only as strong as its
negative space: code that breaks the locking protocol must FAIL to compile
under clang -Werror=thread-safety. Each fixture in tests/compile_fail/ is
one forbidden pattern; this driver compiles it with -fsyntax-only and
checks the outcome:

  --expect-fail  the fixture must be rejected, and the diagnostics must
                 match every `// expect-error: <regex>` line it declares
                 (so it fails for the contracted reason, not a typo);
  --expect-pass  the fixture must compile — the control proving the
                 protocol used correctly is accepted.

Thread-safety analysis is clang-only (the annotations compile away on GCC),
so --expect-fail prints SKIPPED on other compilers; --expect-pass still
compiles there to keep the control fixture honest on every toolchain.
Fixtures whose rejection comes from the ordinary front end (a contracted
static_assert, e.g. the leaf-encoding layout rules) declare
`// compile-fail: any-compiler` and run everywhere.
"""

import argparse
import re
import subprocess
import sys

EXPECT_ERROR_RE = re.compile(r"//\s*expect-error:\s*(.+?)\s*$")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--compiler", required=True)
    ap.add_argument("--compiler-id", required=True,
                    help="CMAKE_CXX_COMPILER_ID (Clang, AppleClang, GNU, ...)")
    ap.add_argument("--include", action="append", default=[],
                    help="include directory (repeatable)")
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--expect-fail", metavar="FIXTURE")
    mode.add_argument("--expect-pass", metavar="FIXTURE")
    args = ap.parse_args()

    is_clang = "Clang" in args.compiler_id
    fixture = args.expect_fail or args.expect_pass

    with open(fixture, encoding="utf-8") as f:
        fixture_text = f.read()
    any_compiler = "compile-fail: any-compiler" in fixture_text

    if args.expect_fail and not is_clang and not any_compiler:
        print(f"SKIPPED: {fixture} needs clang thread-safety analysis "
              f"(compiler is {args.compiler_id})")
        return 0

    cmd = [args.compiler, "-std=c++20", "-fsyntax-only"]
    for inc in args.include:
        cmd += ["-I", inc]
    if is_clang:
        cmd += ["-Wthread-safety", "-Werror=thread-safety"]
    cmd.append(fixture)

    proc = subprocess.run(cmd, capture_output=True, text=True)
    diagnostics = proc.stderr + proc.stdout

    if args.expect_pass:
        if proc.returncode != 0:
            print(f"FAIL: control fixture {fixture} did not compile:")
            print(diagnostics)
            return 1
        print(f"PASS: {fixture} compiles (correct protocol accepted)")
        return 0

    if proc.returncode == 0:
        print(f"FAIL: {fixture} compiled, but the pattern it contains is "
              "forbidden by the concurrency contract")
        return 1

    expected = [m.group(1) for line in fixture_text.splitlines()
                if (m := EXPECT_ERROR_RE.search(line))]
    if not expected:
        print(f"FAIL: {fixture} declares no // expect-error: lines")
        return 1
    missing = [pat for pat in expected if not re.search(pat, diagnostics)]
    if missing:
        print(f"FAIL: {fixture} was rejected, but not for the contracted "
              f"reason; diagnostics did not match: {missing}")
        print(diagnostics)
        return 1
    print(f"PASS: {fixture} rejected with the contracted diagnostics")
    return 0


if __name__ == "__main__":
    sys.exit(main())
