// pam-lint-fixture-path: src/pam/example.h
// pam-lint-fixture-expect: naked-new
#pragma once

struct widget {
  int x;
};

inline widget* leak_prone() {
  return new widget{1};  // bypasses the pool layer: must be flagged
}
