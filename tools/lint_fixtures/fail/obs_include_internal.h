// pam-lint-fixture-path: src/obs/example.h
// pam-lint-fixture-expect: include-discipline
// The observability layer observes subsystems through their public headers;
// reaching into the tree kernel would invert the dependency direction.
#include "pam/node.h"  // tree-kernel internal: flagged inside src/obs/ too

namespace pam::obs {
inline int example() { return 0; }
}  // namespace pam::obs
