// pam-lint-fixture-path: src/server/example.h
// pam-lint-fixture-expect: unguarded-mutex
#pragma once

#include "util/thread_annotations.h"

namespace pam {

class leaky {
  mutable mutex mu_;  // nothing references it in any annotation: flagged
  int count_ = 0;
};

}  // namespace pam
