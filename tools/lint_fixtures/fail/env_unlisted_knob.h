// pam-lint-fixture-path: src/server/example.h
// pam-lint-fixture-expect: env-catalogue
// The self-test catalogue contains only PAM_LISTED; reading any other knob
// must be flagged until a row is added to env_knobs() in util/env.h.
#pragma once

#include "util/env.h"

namespace pam {
inline long example_knob() { return env_long("PAM_UNLISTED", 0); }
}  // namespace pam
