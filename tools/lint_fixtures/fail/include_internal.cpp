// pam-lint-fixture-path: tests/test_example.cpp
// pam-lint-fixture-expect: include-discipline
#include "pam/node.h"  // tree-kernel internal: flagged

int main() { return 0; }
