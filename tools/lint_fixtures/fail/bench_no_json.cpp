// pam-lint-fixture-path: bench/bench_example.cpp
// pam-lint-fixture-expect: bench-json
#include <cstdio>

int main() {
  std::printf("result: 42\n");  // human-readable only: flagged
  return 0;
}
