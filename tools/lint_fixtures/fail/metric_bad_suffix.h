// pam-lint-fixture-path: src/server/example.h
// pam-lint-fixture-expect: metric-name
#pragma once

#include "obs/metrics.h"

namespace pam {
struct example {
  obs::counter ops_{"pam_example_ops"};        // counter without _total
  obs::gauge depth_{"example_queue_depth"};    // missing pam_ prefix
  obs::histogram lat_{"pam_example_latency"};  // no unit suffix
};
}  // namespace pam
