// pam-lint-fixture-path: src/store/example.h
// pam-lint-fixture-expect: include-discipline
// The durability layer is a consumer of the tree kernel: reaching into
// pam/ internals would couple the on-disk format to node layout.
#include "pam/node.h"  // tree-kernel internal: flagged even inside src/

namespace pam::store {
inline int example() { return 0; }
}  // namespace pam::store
