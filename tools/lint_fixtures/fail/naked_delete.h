// pam-lint-fixture-path: src/pam/example.h
// pam-lint-fixture-expect: naked-delete
#pragma once

struct widget {
  int x;
};

inline void unsafe_free(widget* w) {
  delete w;  // bypasses epoch::retire: must be flagged
}
