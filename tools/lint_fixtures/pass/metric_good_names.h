// pam-lint-fixture-path: src/server/example.h
#pragma once

#include "obs/metrics.h"

namespace pam {
// Doc examples in comments must not fire: obs::counter bad{"no_suffix"}.
struct example {
  obs::counter ops_{"pam_example_ops_total"};
  obs::gauge depth_{"pam_example_queue_depth"};
  obs::gauge bytes_{"pam_example_reserved_bytes"};
  obs::histogram lat_{"pam_example_flush_ns"};
  // Wrapped member initializers are still checked (name on the next line).
  obs::histogram batch_{
      "pam_example_batch_ops"};
  // References and parameters are not constructions.
  void observe(obs::histogram& h) { h.record(1); }
};
}  // namespace pam
