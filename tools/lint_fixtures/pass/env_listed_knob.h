// pam-lint-fixture-path: src/server/example.h
#pragma once

#include "util/env.h"

namespace pam {
// Catalogued knobs and PAM_TEST_* fixtures read freely; a commented-out
// read is not a read: env_long("PAM_COMMENTED", 1).
inline long example_knob() { return env_long("PAM_LISTED", 0); }
inline long test_knob() { return env_long("PAM_TEST_ENV_X", 0); }
}  // namespace pam
