// pam-lint-fixture-path: src/pam/coded_block.h
// The variable-length block encoder is part of the sanctioned allocation
// surface (alongside src/alloc/**): it owns the byte-class pool table and
// the counted overflow path, so raw new/delete here need no waivers.
#pragma once

struct byte_pool {
  int cls;
};

inline byte_pool* make_pool(int cls) {
  return new byte_pool{cls};  // pool-table singleton: sanctioned here
}

inline void* overflow_allocate(unsigned long n) {
  return ::operator new(n);  // oversized block, atomically counted
}

inline void overflow_free(void* p) {
  ::operator delete(p);
}
