// pam-lint-fixture-path: tests/test_example.cpp
// Outside src/, the tree kernel is reached through the pam.h facade; the
// subsystem headers (server/, util/, alloc/, ...) are public surface.
#include "pam/pam.h"
#include "server/kv_store.h"
#include "util/random.h"
#include "alloc/type_allocator.h"

int main() { return 0; }
