// pam-lint-fixture-path: bench/bench_example.cpp
// A bench binary that reports through the machine-readable path.
#include "common/bench_util.h"

int main() {
  pam::bench::print_header("bench_example", "fixture");
  double t = pam::bench::timed([] {});
  pam::bench::row("noop", 1, 1, t, 0.0);
  return 0;
}
