// pam-lint-fixture-path: src/obs/example.h
// The facade and subsystem-public headers are fine from src/obs/.
#include "pam/pam.h"
#include "util/thread_annotations.h"

namespace pam::obs {
inline int example() { return 0; }
}  // namespace pam::obs
