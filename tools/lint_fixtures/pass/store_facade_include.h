// pam-lint-fixture-path: src/store/example.h
// src/store/ reaches the tree kernel through the pam.h facade only; its
// own headers and the public subsystem surface are fine.
#include "pam/pam.h"
#include "store/crc32c.h"
#include "util/env.h"

namespace pam::store {
inline int example() { return 0; }
}  // namespace pam::store
