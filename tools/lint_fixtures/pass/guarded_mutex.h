// pam-lint-fixture-path: src/server/example.h
// Every mutex member is visible to the thread-safety analysis: one through
// a PAM_GUARDED_BY companion, one through a PAM_REQUIRES method contract,
// one waived with a rationale.
#pragma once

#include "util/thread_annotations.h"

namespace pam {

class guarded {
 public:
  void bump() {
    mutex_guard lock(mu_);
    count_++;
  }

  int read_locked() const PAM_REQUIRES(order_mu_) { return count_; }

 private:
  mutable mutex mu_;
  int count_ PAM_GUARDED_BY(mu_) = 0;
  mutable mutex order_mu_;

  // pam-lint: allow(unguarded-mutex) — per-slot latch held positionally by
  // the traversal, like the B+tree's crab latching.
  mutable shared_mutex slot_mu_;
};

}  // namespace pam
