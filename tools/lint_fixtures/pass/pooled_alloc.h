// pam-lint-fixture-path: src/pam/example.h
// A src/ file that allocates the approved ways: placement new into pool
// storage, plus explicitly waived sites with rationales.
#pragma once

struct widget {
  int x;
};

inline widget* construct_in(void* slot) {
  return new (slot) widget{1};  // placement new: constructs, never allocates
}

inline widget* immortal() {
  // pam-lint: allow(naked-new) — process-lifetime singleton, never freed.
  static widget* w = new widget{2};
  return w;
}

inline void reclaim(widget* w) {
  // pam-lint: allow(naked-delete) — runs inside the epoch drain callback.
  delete w;
}

struct has_deleted_copy {
  has_deleted_copy(const has_deleted_copy&) = delete;  // not a free
};
