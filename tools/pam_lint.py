#!/usr/bin/env python3
"""pam_lint: repo-specific invariants the compiler cannot check.

Rules (each can be waived per-site with a comment on the offending line or
on the comment line(s) immediately above it: `pam-lint: allow(<rule>)`):

  naked-new           `new` expressions in src/** outside the sanctioned
                      allocation surface: the pool layer (src/alloc/**) plus
                      the variable-length block encoders
                      (src/pam/coded_block.h, src/pam/delta_block.h), which
                      own the byte-class pool tables and the counted
                      overflow path for oversized blocks. Tree nodes, leaf
                      blocks and payloads must come from these so epoch
                      reclamation and the space accounting (Table 4) see
                      every allocation.
  naked-delete        `delete` in src/** outside the same surface: frees
                      must go through epoch::retire or a pool, never
                      directly.
  unguarded-mutex     a mutex member in src/** must be referenced by at
                      least one thread-safety annotation in the same file
                      (PAM_GUARDED_BY companion, PAM_REQUIRES(mu) method,
                      ...): an unannotated mutex protects nothing the
                      analysis can see.
  bench-json          every bench/bench_*.cpp must report through the
                      machine-readable path (bench_json / row / row_seq) so
                      PAM_BENCH_JSON sweeps never silently lose a binary.
  include-discipline  outside src/, the tree kernel is reached through the
                      pam/pam.h facade only; including pam/ internals
                      (node.h, tree_ops.h, ...) directly bypasses the public
                      surface. Subsystem headers (server/, util/, alloc/,
                      parallel/, apps/, baselines/) are public. The
                      durability layer (src/store/**) is held to the same
                      rule even though it lives in src/: checkpoints
                      serialize through the facade's serialize/deserialize
                      surface, never by reaching into node internals, so a
                      format change is always a facade change. The
                      observability layer (src/obs/**) likewise: it observes
                      every subsystem, so letting it reach into the tree
                      kernel would make it a dependency cycle magnet.
  metric-name         every obs::counter / obs::gauge / obs::histogram
                      constructed with a literal name must follow the naming
                      contract: the `pam_` prefix plus a unit suffix by kind
                      (counter: `_total`; gauge: `_bytes`, `_depth`,
                      `_entries`, `_ns`, `_ratio`; histogram: `_ns`,
                      `_bytes`, `_ops`). Dashboards and the exposition sort
                      by name; an unsuffixed metric is ambiguous forever.
  env-catalogue       every `PAM_*` environment knob read anywhere in the
                      tree (env_long / env_double / getenv) must have a row
                      in util/env.h's env_knobs() catalogue — the config
                      provenance benches dump. `PAM_TEST_*` names are test
                      fixtures and exempt.

Usage:
  pam_lint.py --root <repo-root>    lint the repository (exit 1 on findings)
  pam_lint.py --self-test           run against tools/lint_fixtures
"""

import argparse
import os
import re
import sys

RULES = (
    "naked-new",
    "naked-delete",
    "unguarded-mutex",
    "bench-json",
    "include-discipline",
    "metric-name",
    "env-catalogue",
)

WAIVER_RE = re.compile(r"pam-lint:\s*allow\(([a-z-]+)\)")

# ---------------------------------------------------------------- scanning --


def strip_code(text):
    """Blank out comments and string/char literals, preserving line structure.

    Keeps every newline so match offsets still map to source lines. Good
    enough for lint purposes: raw strings are treated as plain strings
    (none in this tree contain code-like tokens).
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    j += 1
                    break
                j += 1
            # Preserve newlines inside the blanked span: a lone quote (e.g.
            # a digit separator misread as a char literal reaching the line
            # end) must not merge two lines and desync line numbering.
            out.append(quote + "".join(
                ch if ch == "\n" or ch == quote else " "
                for ch in text[i + 1:j]))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def waived(lines, lineno, rule):
    """True if `pam-lint: allow(rule)` covers 1-based line `lineno`.

    A waiver counts on the line itself or on the contiguous run of
    comment-only lines immediately above it.
    """

    def has_waiver(line):
        m = WAIVER_RE.search(line)
        return m is not None and m.group(1) == rule

    if has_waiver(lines[lineno - 1]):
        return True
    i = lineno - 2
    while i >= 0 and lines[i].lstrip().startswith("//"):
        if has_waiver(lines[i]):
            return True
        i -= 1
    return False


class Finding:
    def __init__(self, path, lineno, rule, message):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


# Placement new (`new (&slot) T(...)`) constructs into pool storage and is
# the blessed idiom, so `new (` is exempt. (std::nothrow would slip through
# this test, but the tree never uses it.)
NEW_RE = re.compile(r"\bnew\b(?!\s*\()")
DELETE_RE = re.compile(r"\bdelete\b")
# `= delete;` on the same line declares a deleted function, not a free.
DELETED_FN_RE = re.compile(r"=\s*delete\b")
# Leading whitespace is horizontal-only: with MULTILINE a bare \s* would
# swallow newlines and pin the match (and its line number) lines too early.
MUTEX_MEMBER_RE = re.compile(
    r"^[ \t]*(?:mutable[ \t]+)?(?:pam::|std::)?(?:shared_)?mutex[ \t]+(\w+)[ \t]*;",
    re.MULTILINE,
)
PAM_ANNOTATION_RE = re.compile(r"PAM_[A-Z_]+\(([^()]*)\)")
BENCH_EMIT_RE = re.compile(r"\b(?:bench_json|row|row_seq)\s*\(")
# Matched against ORIGINAL lines (strip_code blanks string literals, which
# would erase the include path).
PAM_INTERNAL_INCLUDE_RE = re.compile(
    r'^\s*#\s*include\s+"(pam/(?!pam\.h)[^"]+)"')
# Metric constructions are located in STRIPPED code (so commented examples
# in doc headers don't fire), then the name literal is recovered from the
# original line. A type mention with no literal on the line (references,
# parameters, obs::histogram::bucket_of(...)) is not a construction.
OBS_METRIC_TYPE_RE = re.compile(r"\bobs::(counter|gauge|histogram)\b")
# Anchored at the type mention: an optional `>` (make_unique<obs::gauge>),
# an optional variable name, then the ctor's ( or { and the name literal.
# Anything else after the type (`::`, `&`, a bare parameter) is a reference,
# not a construction.
OBS_METRIC_CTOR_RE = re.compile(
    r'\Aobs::(?:counter|gauge|histogram)\s*(?:>\s*)?(?:[A-Za-z_]\w*\s*)?'
    r'[({]\s*"([^"]*)"')
METRIC_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("_bytes", "_depth", "_entries", "_ns", "_ratio"),
    "histogram": ("_ns", "_bytes", "_ops"),
}
# Env-knob reads, matched against ORIGINAL lines for the same reason as
# includes. setenv/unsetenv calls are writes, not reads, and don't count.
ENV_READ_RE = re.compile(
    r'\b(?:env_long|env_double|getenv)\s*\(\s*"(PAM_\w+)"')
# Rows of the env_knobs() table in util/env.h.
ENV_CATALOGUE_ROW_RE = re.compile(r'\{"(PAM_\w+)"')


def lineno_of(text, pos):
    return text.count("\n", 0, pos) + 1


def lint_file(relpath, text, env_catalogue=None):
    """Lint one file; `relpath` decides which rules apply.

    `env_catalogue` is the set of PAM_* names listed in util/env.h's
    env_knobs() table (None skips the env-catalogue rule — e.g. when the
    table could not be parsed).
    """
    findings = []
    lines = text.split("\n")
    code = strip_code(text)
    code_lines = code.split("\n")
    unix = relpath.replace(os.sep, "/")

    in_src = unix.startswith("src/")
    # The sanctioned allocation surface: the pool layer itself, plus the
    # coded-block encoders, which own the byte-granular pool tables and the
    # atomically counted overflow allocations for oversized blocks.
    in_pool_layer = (unix.startswith("src/alloc/")
                     or unix == "src/pam/coded_block.h"
                     or unix == "src/pam/delta_block.h")
    is_wrapper = unix == "src/util/thread_annotations.h"

    if in_src and not in_pool_layer and not is_wrapper:
        for m in NEW_RE.finditer(code):
            ln = lineno_of(code, m.start())
            if not waived(lines, ln, "naked-new"):
                findings.append(Finding(
                    relpath, ln, "naked-new",
                    "allocate through the pool layer (src/alloc) or waive "
                    "with a rationale"))
        for m in DELETE_RE.finditer(code):
            ln = lineno_of(code, m.start())
            line_code = code.split("\n")[ln - 1]
            if DELETED_FN_RE.search(line_code):
                continue
            if not waived(lines, ln, "naked-delete"):
                findings.append(Finding(
                    relpath, ln, "naked-delete",
                    "free through epoch::retire or a pool, or waive with a "
                    "rationale"))

    if in_src and not is_wrapper:
        annotated = set()
        for m in PAM_ANNOTATION_RE.finditer(code):
            for tok in re.findall(r"\w+", m.group(1)):
                annotated.add(tok)
        for m in MUTEX_MEMBER_RE.finditer(code):
            name = m.group(1)
            ln = lineno_of(code, m.start())
            if name in annotated:
                continue
            if not waived(lines, ln, "unguarded-mutex"):
                findings.append(Finding(
                    relpath, ln, "unguarded-mutex",
                    f"mutex member '{name}' has no thread-safety annotation "
                    "companion (PAM_GUARDED_BY / PAM_REQUIRES / ...)"))

    if unix.startswith("bench/bench_") and unix.endswith(".cpp"):
        if not BENCH_EMIT_RE.search(code):
            findings.append(Finding(
                relpath, 1, "bench-json",
                "bench binary never reports through bench_json/row/row_seq; "
                "PAM_BENCH_JSON sweeps would silently miss it"))

    # Metric naming. Constructions are found in stripped code; the name comes
    # from the original line (the literal is blanked in `code`). src/obs/ is
    # the definition site, not a consumer, and is exempt.
    if not unix.startswith("src/obs/"):
        for m in OBS_METRIC_TYPE_RE.finditer(code):
            kind = m.group(1)
            ln = lineno_of(code, m.start())
            col = m.start() - (code.rfind("\n", 0, m.start()) + 1)
            # The name literal sits on the construction line or, for wrapped
            # member initializers, the next one.
            tail = lines[ln - 1][col:]
            if ln < len(lines):
                tail += "\n" + lines[ln]
            nm = OBS_METRIC_CTOR_RE.match(tail)
            if nm is None:
                continue  # a reference or parameter, not a construction
            name = nm.group(1)
            suffixes = METRIC_SUFFIXES[kind]
            ok = name.startswith("pam_") and name.endswith(suffixes)
            if not ok and not waived(lines, ln, "metric-name"):
                findings.append(Finding(
                    relpath, ln, "metric-name",
                    f"{kind} '{name}' must start with 'pam_' and end with "
                    f"one of {'/'.join(suffixes)}"))

    # Every env knob read must be in the util/env.h catalogue, or config
    # provenance silently under-reports. PAM_TEST_* are test fixtures. Calls
    # are detected in stripped code (a commented-out read is not a read);
    # the knob name comes from the original line.
    if env_catalogue is not None and unix != "src/util/env.h":
        for i, line in enumerate(lines):
            if not re.search(r"\b(?:env_long|env_double|getenv)\s*\(",
                             code_lines[i]):
                continue
            for m in ENV_READ_RE.finditer(line):
                name = m.group(1)
                if name.startswith("PAM_TEST_") or name in env_catalogue:
                    continue
                ln = i + 1
                if not waived(lines, ln, "env-catalogue"):
                    findings.append(Finding(
                        relpath, ln, "env-catalogue",
                        f"knob '{name}' is read here but missing from "
                        "env_knobs() in src/util/env.h"))

    # src/store/ is inside src/ but is a CONSUMER of the tree kernel, not
    # part of it: the checkpoint format depends only on the facade's
    # serialize/deserialize surface, and the lint keeps it that way.
    # src/obs/ likewise: the observability layer may see subsystem headers'
    # metrics but never the tree kernel's internals.
    if (not in_src or unix.startswith("src/store/")
            or unix.startswith("src/obs/")):
        for i, line in enumerate(lines):
            m = PAM_INTERNAL_INCLUDE_RE.match(line)
            if m is None:
                continue
            ln = i + 1
            if not waived(lines, ln, "include-discipline"):
                findings.append(Finding(
                    relpath, ln, "include-discipline",
                    f'"{m.group(1)}" is a tree-kernel internal; include '
                    '"pam/pam.h" instead'))

    return findings


LINT_DIRS = ("src", "tests", "bench", "examples")
LINT_EXTS = (".h", ".hpp", ".cpp", ".cc")


def read_env_catalogue(root):
    """The set of PAM_* knobs listed in util/env.h, or None if unparsable."""
    path = os.path.join(root, "src", "util", "env.h")
    if not os.path.isfile(path):
        return None
    with open(path, encoding="utf-8") as f:
        names = set(ENV_CATALOGUE_ROW_RE.findall(f.read()))
    return names or None


def lint_tree(root):
    findings = []
    catalogue = read_env_catalogue(root)
    for d in LINT_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, filenames in os.walk(base):
            for fn in sorted(filenames):
                if not fn.endswith(LINT_EXTS):
                    continue
                path = os.path.join(dirpath, fn)
                rel = os.path.relpath(path, root)
                with open(path, encoding="utf-8") as f:
                    findings.extend(lint_file(rel, f.read(), catalogue))
    return findings


# --------------------------------------------------------------- self-test --
# Fixtures live in tools/lint_fixtures/{pass,fail}. Each fixture's first
# line declares the path it pretends to be:
#     // pam-lint-fixture-path: src/pam/example.h
# A pass fixture must produce zero findings; a fail fixture must produce at
# least one finding whose rule matches the `expect:` declaration:
#     // pam-lint-fixture-expect: naked-new

FIXTURE_PATH_RE = re.compile(r"pam-lint-fixture-path:\s*(\S+)")
FIXTURE_EXPECT_RE = re.compile(r"pam-lint-fixture-expect:\s*([a-z-]+)")


def self_test(fixtures_dir):
    failures = []
    ran = 0
    for kind in ("pass", "fail"):
        d = os.path.join(fixtures_dir, kind)
        for fn in sorted(os.listdir(d)):
            path = os.path.join(d, fn)
            with open(path, encoding="utf-8") as f:
                text = f.read()
            pm = FIXTURE_PATH_RE.search(text)
            if pm is None:
                failures.append(f"{fn}: missing pam-lint-fixture-path header")
                continue
            ran += 1
            # Fixtures exercising env-catalogue declare knobs against this
            # synthetic two-row table.
            findings = lint_file(pm.group(1), text,
                                 env_catalogue={"PAM_LISTED"})
            if kind == "pass":
                if findings:
                    failures.append(
                        f"{fn}: expected clean, got: "
                        + "; ".join(str(x) for x in findings))
            else:
                em = FIXTURE_EXPECT_RE.search(text)
                if em is None:
                    failures.append(
                        f"{fn}: missing pam-lint-fixture-expect header")
                    continue
                rules = {x.rule for x in findings}
                if em.group(1) not in rules:
                    failures.append(
                        f"{fn}: expected a {em.group(1)} finding, got "
                        f"{sorted(rules) if rules else 'none'}")
    for msg in failures:
        print("SELF-TEST FAIL:", msg)
    print(f"pam_lint self-test: {ran} fixtures, {len(failures)} failures")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", help="repository root to lint")
    ap.add_argument("--self-test", action="store_true",
                    help="validate the linter against tools/lint_fixtures")
    args = ap.parse_args()

    if args.self_test:
        here = os.path.dirname(os.path.abspath(__file__))
        return self_test(os.path.join(here, "lint_fixtures"))

    if not args.root:
        ap.error("--root is required unless --self-test")
    findings = lint_tree(args.root)
    for f in findings:
        print(f)
    print(f"pam_lint: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
