#!/usr/bin/env python3
"""Compare a PAM_BENCH_JSON results stream against a committed baseline.

The bench binaries emit one JSON line per reported metric
({"bench":…,"config":…,"metric":…,"value":…}) when PAM_BENCH_JSON is set.
This tool holds those results to a *committed* baseline file, so the perf
trajectory is reviewed like code: raising a floor is a diff, and a
regression fails the run instead of silently eroding.

The baseline is self-describing JSON:

    {
      "note": "free-form provenance",
      "gates": [
        {"bench": "bench_leaf_encodings", "config": "delta_space",
         "metric": "flat_over_delta", "min": 1.5, "reference": 3.69},
        ...
      ]
    }

Each gate names one (bench, config, metric) series and enforces "min"
and/or "max" against the LAST matching line in the results stream (a
rerun appends; the latest run wins). "reference" is informational — the
value measured when the floor was cut — and is never enforced.

Exit codes: 0 all gates hold (or the run was skipped), 1 a gate failed,
2 the baseline itself is malformed. If the results file does not exist,
prints SKIPPED and exits 0 so ctest can mark the test as skipped (the
results stream only exists after a bench binary ran with PAM_BENCH_JSON;
CI's perf-smoke job produces it, a plain `ctest` run does not).

Gates whose series is absent from the results stream are only an error
under --require-all (CI runs every bench; a local spot-run of one bench
should not fail the other benches' gates).
"""

import argparse
import json
import sys


def load_results(path):
    series = {}
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                print(f"warning: {path}:{lineno}: unparseable line skipped")
                continue
            if "metric" not in row:
                continue  # env-provenance header line, not a metric row
            try:
                key = (row["bench"], row["config"], row["metric"])
                series[key] = float(row["value"])
            except (KeyError, TypeError, ValueError):
                print(f"warning: {path}:{lineno}: malformed metric row skipped")
    return series


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON (gates + floors)")
    ap.add_argument("--current", required=True,
                    help="PAM_BENCH_JSON results stream to check")
    ap.add_argument("--require-all", action="store_true",
                    help="fail if a gated series is missing from the results")
    args = ap.parse_args()

    try:
        with open(args.baseline, "r", encoding="utf-8") as f:
            baseline = json.load(f)
        gates = baseline["gates"]
        if not isinstance(gates, list) or not gates:
            raise ValueError("empty gates")
        for g in gates:
            if "min" not in g and "max" not in g:
                raise ValueError(f"gate without min/max: {g}")
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"ERROR: malformed baseline {args.baseline}: {e}")
        return 2

    try:
        series = load_results(args.current)
    except OSError:
        print(f"SKIPPED: no bench results at {args.current} "
              "(run a bench with PAM_BENCH_JSON=<path> first)")
        return 0

    failures = 0
    missing = 0
    for g in gates:
        key = (g["bench"], g["config"], g["metric"])
        name = "/".join(key)
        if key not in series:
            missing += 1
            level = "MISSING" if args.require_all else "absent "
            print(f"{level}  {name}")
            continue
        v = series[key]
        ok = True
        bound = []
        if "min" in g:
            bound.append(f">= {g['min']}")
            ok = ok and v >= float(g["min"])
        if "max" in g:
            bound.append(f"<= {g['max']}")
            ok = ok and v <= float(g["max"])
        ref = f"  (reference {g['reference']})" if "reference" in g else ""
        verdict = "ok    " if ok else "FAIL  "
        print(f"{verdict}  {name} = {v:g}  [{' and '.join(bound)}]{ref}")
        if not ok:
            failures += 1

    if args.require_all and missing:
        print(f"{missing} gated series missing from {args.current}")
        return 1
    if failures:
        print(f"{failures} gate(s) failed against {args.baseline}")
        return 1
    print(f"all present gates hold against {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
